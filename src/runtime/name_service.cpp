#include "runtime/name_service.h"

#include <algorithm>
#include <mutex>
#include <stdexcept>

#include "runtime/rendezvous_core.h"
#include "sim/rng.h"

namespace mm::runtime {

void service_node::on_message(sim::simulator& sim, const sim::message& msg) {
    // Second leg of a two-phase (Valiant) relay: forward to the true
    // destination and do not process locally.
    if (msg.relay_final != net::invalid_node && msg.relay_final != self_) {
        sim::message onward = msg;
        onward.source = self_;
        onward.destination = msg.relay_final;
        onward.relay_final = net::invalid_node;
        sim.send(onward);
        return;
    }
    // The directory transitions live in rendezvous_core so the mmd daemon
    // runs the identical state machine off TCP frames.
    switch (msg.kind) {
        case msg_post:
            rendezvous::apply_post(directory_, msg.port, msg.subject_address, msg.stamp,
                                   msg.ttl, sim.now());
            break;
        case msg_remove:
            rendezvous::apply_remove(directory_, msg.port, msg.subject_address);
            break;
        case msg_query: {
            const auto hit = rendezvous::answer_query(directory_, msg.port, sim.now());
            if (hit) {
                sim::message reply;
                reply.kind = msg_reply;
                reply.port = msg.port;
                reply.source = self_;
                // Reply to the querying client, which relayed queries carry
                // in subject_address (msg.source is just the last hop).
                reply.destination = msg.subject_address != net::invalid_node
                                        ? msg.subject_address
                                        : msg.source;
                reply.subject_address = hit->where;
                reply.stamp = hit->stamp;
                reply.tag = msg.tag;
                sim.send(reply);
            }
            break;
        }
        case msg_reply: {
            // Keep the freshest binding if several rendezvous nodes answer.
            const core::port_entry* cur = replies_.find(msg.tag);
            const std::optional<core::port_entry> current =
                cur == nullptr ? std::nullopt : std::optional{*cur};
            if (rendezvous::reply_wins(current, msg.stamp)) {
                core::port_entry entry;
                entry.port = msg.port;
                entry.where = msg.subject_address;
                entry.stamp = msg.stamp;
                replies_.ref(msg.tag) = entry;
            }
            if (reply_hook_) reply_hook_(sim, msg.tag);
            break;
        }
        default:
            throw std::logic_error{"service_node: unknown message kind"};
    }
}

void service_node::on_timer(sim::simulator& sim, std::int64_t timer_id) {
    if (timer_hook_) timer_hook_(sim, self_, timer_id);
}

void service_node::on_crash(sim::simulator& /*sim*/) {
    directory_.clear();
    hints_.clear();
    replies_.clear();
}

bool service_node::has_reply(std::int64_t tag) const { return replies_.contains(tag); }

core::port_entry service_node::reply(std::int64_t tag) const {
    const core::port_entry* entry = replies_.find(tag);
    if (entry == nullptr) throw std::out_of_range{"service_node::reply: no reply"};
    return *entry;
}

name_service::name_service(sim::simulator& sim, const core::locate_strategy& strategy)
    : name_service{sim, strategy, options{}} {}

name_service::name_service(sim::simulator& sim, const core::locate_strategy& strategy,
                           options opts)
    : sim_{&sim}, strategy_{&strategy}, options_{opts} {
    if (options_.refresh_period < 0)
        throw std::invalid_argument{"name_service: refresh_period must be >= 0 (0 = off)"};
    if (options_.entry_ttl < -1)
        throw std::invalid_argument{"name_service: entry_ttl must be >= -1 (-1 = never)"};
    if (options_.valiant_relay) valiant_state_ = options_.valiant_seed | 1;
    const net::node_id n = sim.network().node_count();
    if (options_.valiant_relay)
        valiant_counters_.resize(static_cast<std::size_t>(n));
    nodes_.reserve(static_cast<std::size_t>(n));
    refresh_armed_.assign(static_cast<std::size_t>(n), 0);
    for (net::node_id v = 0; v < n; ++v) attach_service_node(v);
}

void name_service::attach_service_node(net::node_id v) {
    auto handler = std::make_shared<service_node>(v);
    handler->set_timer_hook([this](sim::simulator& s, net::node_id at, std::int64_t id) {
        handle_timer(s, at, id);
    });
    handler->set_reply_hook(
        [this](sim::simulator& s, std::int64_t tag) { handle_reply(s, tag); });
    const auto idx = static_cast<std::size_t>(v);
    if (idx < nodes_.size())
        nodes_[idx] = handler;
    else
        nodes_.push_back(handler);
    sim_->attach(v, handler);
}

bool name_service::deferred() const noexcept { return sim_->parallel(); }

net::node_id name_service::random_relay(net::node_id source, net::node_id destination) {
    const auto n = static_cast<std::uint64_t>(sim_->network().node_count());
    if (deferred()) {
        // Parallel regime: draw k of node v is a pure function of
        // (valiant_seed, v, k), so relay choices cannot depend on how shard
        // execution interleaved - per-node streams instead of one shared
        // sequential stream.
        const auto draw = valiant_counters_[static_cast<std::size_t>(source)].fetch_add(
            1, std::memory_order_relaxed);
        const auto mixed = sim::splitmix64(
            (options_.valiant_seed | 1) ^
            sim::splitmix64((static_cast<std::uint64_t>(source) << 32) ^ draw));
        (void)destination;
        return static_cast<net::node_id>(mixed % n);
    }
    valiant_state_ = sim::splitmix64(valiant_state_);
    auto relay = static_cast<net::node_id>(valiant_state_ % n);
    // A relay equal to either endpoint degenerates to direct delivery.
    (void)source, (void)destination;
    return relay;
}

sim::time_point name_service::send_application(sim::message msg) {
    const auto& routes = sim_->routes();
    const net::node_id src = msg.source;
    const net::node_id dst = msg.destination;
    if (options_.valiant_relay && dst != src) {
        // A relay equal to either endpoint degenerates to direct delivery,
        // as does one drawn on a departed node (relays are drawn over the
        // full id space, and churn leaves departed ids edgeless - routing
        // through one would throw).  Membership only changes at the top
        // level, so the degeneration is deterministic across engines.
        const net::node_id relay = random_relay(src, dst);
        if (relay != dst && relay != src && sim_->network().present(relay)) {
            msg.relay_final = dst;
            msg.destination = relay;
            // Send first: routing the message materializes the source-rooted
            // row, so the settle-deadline distances below are O(1) row reads
            // instead of fresh searches.  send() never advances the clock,
            // so the deadline is unchanged by the reorder.
            sim_->send(std::move(msg));
            return sim_->now() + routes.distance(src, relay) + routes.distance(relay, dst);
        }
    }
    sim_->send(std::move(msg));
    return sim_->now() + routes.distance(src, dst);
}

void name_service::run_for(sim::time_point duration) { sim_->run_until(sim_->now() + duration); }

void name_service::arm_refresh(net::node_id at) {
    if (options_.refresh_period <= 0 || refresh_armed_[static_cast<std::size_t>(at)]) return;
    refresh_armed_[static_cast<std::size_t>(at)] = 1;
    sim_->set_timer(at, options_.refresh_period, refresh_timer_id);
}

void name_service::handle_timer(sim::simulator& sim, net::node_id at, std::int64_t timer_id) {
    if (timer_id < 0) {
        advance_op(-timer_id);
        return;
    }
    if (timer_id != refresh_timer_id) return;
    refresh_armed_[static_cast<std::size_t>(at)] = 0;
    node(at).directory().expire(sim.now());
    // Collect this host's own ports under the shared lock, then send with
    // the lock released.  Only `at`'s shard ever erases (port, at) entries
    // mid-run (migrate withdrawals run at the old host), so the scan result
    // is deterministic regardless of what other shards are doing.
    std::vector<core::port_id> mine;
    {
        const std::shared_lock lk{reg_mu_};
        for (const auto& [port, host] : registrations_)
            if (host == at) mine.push_back(port);
    }
    for (const core::port_id port : mine) {
        for (const net::node_id target : strategy_->post_set(at, port)) {
            sim::message msg;
            msg.kind = msg_post;
            msg.port = port;
            msg.source = at;
            msg.destination = target;
            msg.subject_address = at;
            msg.stamp = sim.now();
            msg.ttl = options_.entry_ttl;
            send_application(std::move(msg));
        }
    }
    if (!mine.empty()) arm_refresh(at);  // keep refreshing while still a host
}

service_node& name_service::node(net::node_id v) {
    if (v < 0 || v >= static_cast<net::node_id>(nodes_.size()))
        throw std::out_of_range{"name_service::node"};
    return *nodes_[static_cast<std::size_t>(v)];
}

sim::time_point name_service::post_to(core::port_id port, net::node_id at,
                                      const core::node_set& where, std::int64_t tag) {
    sim::time_point settle = sim_->now();
    for (const net::node_id target : where) {
        sim::message msg;
        msg.kind = msg_post;
        msg.port = port;
        msg.source = at;
        msg.destination = target;
        msg.subject_address = at;
        msg.stamp = sim_->now();
        msg.ttl = options_.entry_ttl;
        msg.tag = tag;
        settle = std::max(settle, send_application(std::move(msg)));
    }
    return settle;
}

sim::time_point name_service::remove_from(core::port_id port, net::node_id at,
                                          const core::node_set& where, std::int64_t tag) {
    sim::time_point settle = sim_->now();
    for (const net::node_id target : where) {
        sim::message msg;
        msg.kind = msg_remove;
        msg.port = port;
        msg.source = at;
        msg.destination = target;
        msg.subject_address = at;
        msg.stamp = sim_->now();
        msg.tag = tag;
        settle = std::max(settle, send_application(std::move(msg)));
    }
    return settle;
}

sim::time_point name_service::issue_queries(operation& op, op_id id,
                                            const core::node_set& where) {
    const auto& routes = sim_->routes();
    sim::time_point deadline = sim_->now();
    for (const net::node_id target : where) {
        sim::message msg;
        msg.kind = msg_query;
        msg.port = op.port;
        msg.source = op.actor;
        msg.destination = target;
        msg.subject_address = op.actor;  // reply-to, stable across relaying
        msg.stamp = sim_->now();
        msg.tag = id;
        const auto query_arrives = send_application(std::move(msg));
        // The reply (if any) leaves the rendezvous the instant the query
        // lands and travels back directly; after this tick the stage has
        // provably failed.
        deadline = std::max(deadline, query_arrives + routes.distance(target, op.actor));
    }
    op.result.nodes_queried += static_cast<int>(where.size());
    return deadline;
}

net::node_id name_service::op_timer_node(const operation& op) const {
    // Parallel regime: migrate deadline timers run at the old host, whose
    // shard owns the registration withdrawal (and the remove messages that
    // leave from it), keeping the erase sequentially ordered against the
    // host's own refresh scans.
    if (deferred() && op.kind == op_kind::migrate && op.migrate_from != net::invalid_node)
        return op.migrate_from;
    return op.actor;
}

void name_service::arm_op_timer(const operation& op, op_id id) {
    // +1: the timer was queued before any same-tick arrival events, so give
    // replies landing exactly at the deadline their tick.
    sim_->set_timer(op_timer_node(op), op.phase_deadline - sim_->now() + 1, -id);
}

const core::locate_strategy* name_service::stage_strategy(const operation& op) const {
    if (op.kind != op_kind::locate_fallback || op.stage <= 1) return strategy_;
    const auto index = static_cast<std::size_t>(op.stage - 2);
    return index < op.fallbacks.size() ? op.fallbacks[index] : strategy_;
}

void name_service::start_stage(operation& op, op_id id) {
    op.result.stages = op.stage;
    if (op.kind == op_kind::locate_fallback && op.stage > 1 && op.phase == op_phase::posting) {
        // Servers follow the same fallback policy: re-post at the fallback
        // strategy's rendezvous nodes ("services regularly poll their
        // rendez-vous nodes to see if they are still alive").
        const core::locate_strategy* fallback = stage_strategy(op);
        sim::time_point settle = sim_->now();
        std::vector<std::pair<core::port_id, net::node_id>> live;
        {
            const std::shared_lock lk{reg_mu_};
            live = registrations_;
        }
        for (const auto& [p, at] : live) {
            if (p != op.port || sim_->crashed(at)) continue;
            settle = std::max(settle, post_to(p, at, fallback->post_set(at, p), id));
        }
        op.phase_deadline = settle;
        arm_op_timer(op, id);
        return;
    }
    // Querying leg of the current attempt/level.
    core::node_set targets;
    if (op.kind == op_kind::locate_staged) {
        // Only the not-yet-queried gateways of this level cost messages.
        core::node_set stage_set = strategy_->staged_query_set(op.actor, op.stage, op.port);
        std::set_difference(stage_set.begin(), stage_set.end(), op.queried.begin(),
                            op.queried.end(), std::back_inserter(targets));
        op.queried.insert(op.queried.end(), targets.begin(), targets.end());
        core::normalize_set(op.queried);
    } else {
        targets = stage_strategy(op)->query_set(op.actor, op.port);
    }
    op.phase = op_phase::querying;
    op.phase_deadline = issue_queries(op, id, targets);
    arm_op_timer(op, id);
}

name_service::operation* name_service::find_op(op_id id) noexcept {
    const std::uint32_t* h = op_index_.find(id);
    return h == nullptr ? nullptr : &op_slab_.row<0>(*h);
}

const name_service::operation* name_service::find_op(op_id id) const noexcept {
    const std::uint32_t* h = op_index_.find(id);
    return h == nullptr ? nullptr : &op_slab_.row<0>(*h);
}

name_service::operation& name_service::op_at(op_id id) {
    operation* op = find_op(id);
    if (op == nullptr) throw std::out_of_range{"name_service: unknown op"};
    return *op;
}

name_service::operation& name_service::insert_op(op_id id, operation&& op) {
    const auto h = op_slab_.alloc();
    operation& row = op_slab_.row<0>(h);
    row = std::move(op);  // full assignment: a recycled row keeps no stale field
    op_index_.ref(id) = h;
    return row;
}

void name_service::erase_op(op_id id) {
    const std::uint32_t* ph = op_index_.find(id);
    if (ph == nullptr) return;
    const std::uint32_t h = *ph;
    // Shed the heavy fields before release: a parked free-list slot must not
    // pin a grown node_set's heap block (insert_op move-assigns over the row,
    // so nothing here is ever read again).
    operation& row = op_slab_.row<0>(h);
    row.queried = core::node_set{};
    row.fallbacks = {};
    op_slab_.release(h);
    op_index_.erase(id);
}

op_id name_service::begin_locate_op(op_kind kind, core::port_id port, net::node_id client,
                                    bool use_cache) {
    if (sim_->in_parallel_round())
        throw std::logic_error{"name_service::begin_*: top-level only under the parallel engine"};
    const op_id id = next_op_++;
    operation op;
    op.kind = kind;
    op.port = port;
    op.actor = client;
    op.use_cache = use_cache;
    op.result.issued_at = sim_->now();
    if (kind == op_kind::locate_fallback) op.fallbacks = strategy_->fallback_chain();
    if (use_cache && options_.client_caching && !sim_->crashed(client)) {
        // Local knowledge answers for free: an authoritative directory entry
        // (this client doubles as a rendezvous node) or a cached reply hint.
        auto hint = node(client).directory().lookup(port, sim_->now());
        if (!hint) hint = node(client).hints().lookup(port, sim_->now());
        if (hint) {
            // Answered from the local cache: zero messages, zero latency.
            op.complete = true;
            op.result.found = true;
            op.result.where = hint->where;
            op.result.nodes_queried = 0;
            op.result.completed_at = sim_->now();
            insert_op(id, std::move(op));
            return id;
        }
    }
    op.stage = 1;
    op.phase = op_phase::querying;
    op.phase_deadline = sim_->now();
    operation& slot = insert_op(id, std::move(op));
    if (deferred()) {
        // Route the fan-out through the client's shard: the zero-delay
        // start timer fires inside the event loop, where route computation
        // runs shard-parallel.
        slot.started = false;
        sim_->set_timer(client, 0, -id);
    } else {
        start_stage(slot, id);
    }
    return id;
}

op_id name_service::begin_locate(core::port_id port, net::node_id client) {
    return begin_locate_op(op_kind::locate, port, client, /*use_cache=*/true);
}

op_id name_service::begin_locate_fresh(core::port_id port, net::node_id client) {
    return begin_locate_op(op_kind::locate, port, client, /*use_cache=*/false);
}

op_id name_service::begin_locate_staged(core::port_id port, net::node_id client) {
    return begin_locate_op(op_kind::locate_staged, port, client, /*use_cache=*/false);
}

op_id name_service::begin_locate_with_fallback(core::port_id port, net::node_id client) {
    return begin_locate_op(op_kind::locate_fallback, port, client, /*use_cache=*/true);
}

op_id name_service::begin_post_op(op_kind kind, core::port_id port, net::node_id actor,
                                  net::node_id migrate_from) {
    if (sim_->in_parallel_round())
        throw std::logic_error{"name_service::begin_*: top-level only under the parallel engine"};
    const op_id id = next_op_++;
    operation op;
    op.kind = kind;
    op.port = port;
    op.actor = actor;
    op.migrate_from = migrate_from;
    op.stage = 1;
    op.phase = op_phase::posting;
    op.result.issued_at = sim_->now();
    op.phase_deadline = sim_->now();
    operation& slot = insert_op(id, std::move(op));
    if (deferred()) {
        slot.started = false;
        sim_->set_timer(actor, 0, -id);
    } else {
        start_op(slot, id);
    }
    return id;
}

void name_service::start_op(operation& op, op_id id) {
    if (op.phase == op_phase::posting &&
        (op.kind == op_kind::post || op.kind == op_kind::remove || op.kind == op_kind::migrate)) {
        const auto where = strategy_->post_set(op.actor, op.port);
        op.result.nodes_queried = static_cast<int>(where.size());
        op.phase_deadline = op.kind == op_kind::remove
                                ? remove_from(op.port, op.actor, where, id)
                                : post_to(op.port, op.actor, where, id);
        arm_op_timer(op, id);
        return;
    }
    start_stage(op, id);
}

op_id name_service::begin_register(core::port_id port, net::node_id at) {
    // Record and arm the refresh timer *before* the posts settle, so the
    // first refresh lands one period after the posts, not one period after
    // the settle window (entries with TTL < window would otherwise die
    // before their first renewal).
    {
        const std::unique_lock lk{reg_mu_};
        registrations_.emplace_back(port, at);
    }
    arm_refresh(at);
    return begin_post_op(op_kind::post, port, at, net::invalid_node);
}

op_id name_service::begin_deregister(core::port_id port, net::node_id at) {
    {
        const std::unique_lock lk{reg_mu_};
        std::erase(registrations_, std::pair{port, at});
    }
    return begin_post_op(op_kind::remove, port, at, net::invalid_node);
}

op_id name_service::begin_migrate(core::port_id port, net::node_id from, net::node_id to) {
    // Order matters: post the new address first (it carries a fresher stamp
    // and wins conflicts), then - once those posts settled - withdraw the
    // old posts.
    {
        const std::unique_lock lk{reg_mu_};
        registrations_.emplace_back(port, to);
    }
    arm_refresh(to);
    return begin_post_op(op_kind::migrate, port, to, from);
}

void name_service::complete_op(operation& op, bool found, core::address where,
                               sim::time_point at) {
    op.complete = true;
    op.result.found = found;
    op.result.completed_at = at;
    if (found) {
        op.result.where = where;
        op.result.latency = at - op.result.issued_at;
    }
    if (op.watched) {
        op.watched = false;
        watched_pending_.fetch_sub(1, std::memory_order_relaxed);
    }
}

void name_service::advance_op(op_id id) {
    operation* found = find_op(id);
    if (found == nullptr) return;  // forgotten mid-flight
    operation& op = *found;
    if (op.complete) return;  // a reply beat the deadline timer
    if (!op.started) {
        // Parallel regime: the zero-delay start timer fired on the actor's
        // shard - issue the fan-out there.
        op.started = true;
        start_op(op, id);
        return;
    }
    switch (op.kind) {
        case op_kind::post:
        case op_kind::remove:
            complete_op(op, true, op.actor, op.phase_deadline);
            break;
        case op_kind::migrate:
            if (op.stage == 1) {
                // New posts settled everywhere: now withdraw the old host.
                op.stage = 2;
                {
                    const std::unique_lock lk{reg_mu_};
                    std::erase(registrations_, std::pair{op.port, op.migrate_from});
                }
                op.phase_deadline =
                    remove_from(op.port, op.migrate_from,
                                strategy_->post_set(op.migrate_from, op.port), id);
                arm_op_timer(op, id);
            } else {
                complete_op(op, true, op.actor, op.phase_deadline);
            }
            break;
        case op_kind::locate:
            complete_op(op, false, net::invalid_node, op.phase_deadline);
            break;
        case op_kind::locate_staged: {
            const int levels = std::max(1, strategy_->staged_levels());
            if (op.stage < levels) {
                ++op.stage;
                start_stage(op, id);
            } else {
                complete_op(op, false, net::invalid_node, op.phase_deadline);
            }
            break;
        }
        case op_kind::locate_fallback: {
            if (op.phase == op_phase::posting) {
                // Fallback reposts settled: query the fallback rendezvous.
                op.phase = op_phase::querying;
                start_stage(op, id);
            } else if (op.stage - 1 < static_cast<int>(op.fallbacks.size())) {
                ++op.stage;
                op.phase = op_phase::posting;
                start_stage(op, id);
            } else {
                complete_op(op, false, net::invalid_node, op.phase_deadline);
            }
            break;
        }
    }
}

void name_service::handle_reply(sim::simulator& sim, std::int64_t tag) {
    operation* found = find_op(tag);
    if (found == nullptr) return;
    operation& op = *found;
    if (op.complete || op.phase != op_phase::querying) return;
    const auto entry = node(op.actor).reply(tag);
    complete_op(op, true, entry.where, sim.now());
    if (options_.client_caching && !sim.crashed(op.actor)) {
        core::port_entry hint;
        hint.port = op.port;
        hint.where = entry.where;
        hint.stamp = sim.now();
        hint.expires_at = options_.entry_ttl >= 0 ? sim.now() + options_.entry_ttl : -1;
        node(op.actor).hints().post(hint);
    }
}

std::optional<locate_result> name_service::poll(op_id op) const {
    if (sim_->in_parallel_round())
        throw std::logic_error{"name_service::poll: top-level only under the parallel engine"};
    const operation* found = find_op(op);
    if (found == nullptr) throw std::out_of_range{"name_service::poll: unknown op"};
    if (!found->complete) return std::nullopt;
    locate_result result = found->result;
    result.message_passes = sim_->tag_hops(op);
    return result;
}

void name_service::forget(op_id op) {
    if (sim_->in_parallel_round())
        throw std::logic_error{"name_service::forget: top-level only under the parallel engine"};
    if (const operation* found = find_op(op); found != nullptr) {
        if (!found->complete)
            throw std::logic_error{
                "name_service::forget: operation still in flight (a half-done migrate "
                "would strand its withdrawal leg)"};
        // The tag counter can only be released once every message of the
        // operation settled; a straggler hop would otherwise silently
        // re-create (and permanently leak) the dropped map entry.
        retired_tags_.emplace(found->phase_deadline + 1, op);
        erase_op(op);
    }
    while (!retired_tags_.empty() && retired_tags_.top().first <= sim_->now()) {
        sim_->drop_tag(retired_tags_.top().second);
        retired_tags_.pop();
    }
}

void name_service::run_until_complete(std::span<const op_id> ops) {
    if (sim_->in_parallel_round())
        throw std::logic_error{
            "name_service::run_until_complete: top-level only under the parallel engine"};
    // A previous run_until_complete may have been aborted by an exception
    // (event cap) with operations still marked watched; clear the marks so
    // a late completion of a stale watcher cannot underflow the counter
    // reset below.
    op_index_.for_each([this](std::int64_t, std::uint32_t h) {
        operation& op = op_slab_.row<0>(h);
        if (op.watched) op.watched = false;
    });
    // Sweeps the listed operations: resolves as failed any whose phase
    // timer was provably skipped (the actor was down when it should have
    // fired), and marks the rest watched so complete_op can maintain the
    // pending count in O(1) per completion.
    const auto sweep = [&] {
        for (const op_id id : ops) {
            operation* found = find_op(id);
            if (found == nullptr)
                throw std::out_of_range{"name_service::run_until_complete: unknown op"};
            operation& op = *found;
            if (op.complete) continue;
            if (sim_->now() > op.phase_deadline + 1) {
                complete_op(op, false, net::invalid_node, sim_->now());
            } else if (!op.watched) {
                op.watched = true;
                watched_pending_.fetch_add(1, std::memory_order_relaxed);
            }
        }
    };
    watched_pending_.store(0, std::memory_order_relaxed);
    sweep();
    std::int64_t steps = 0;
    while (watched_pending_.load(std::memory_order_relaxed) > 0) {
        if (!sim_->step()) {
            // Nothing left in the event queue: fail the survivors (their
            // timers were skipped while the actor was crashed).
            for (const op_id id : ops) {
                operation& op = op_at(id);
                if (!op.complete) complete_op(op, false, net::invalid_node, sim_->now());
            }
            return;
        }
        // Periodic re-sweep so ops stranded by a crashed actor resolve even
        // under an endless refresh-timer stream.
        if ((++steps & 0x3ff) == 0) sweep();
    }
}

locate_result name_service::take_result(op_id id) {
    // Settle this operation's stragglers (queries and duplicate replies
    // still traveling after an early first-reply completion) so the hop
    // count returned by the blocking wrappers is exact, not a lower bound.
    const auto deadline = op_at(id).phase_deadline;
    if (sim_->now() <= deadline) sim_->run_until(deadline + 1);
    locate_result result = op_at(id).result;
    result.message_passes = sim_->tag_hops(id);
    forget(id);
    return result;
}

// --- synchronous wrappers ---------------------------------------------------

void name_service::register_server(core::port_id port, net::node_id at) {
    const op_id id = begin_register(port, at);
    run_until_complete({id});
    forget(id);
}

void name_service::deregister_server(core::port_id port, net::node_id at) {
    const op_id id = begin_deregister(port, at);
    run_until_complete({id});
    forget(id);
}

void name_service::migrate_server(core::port_id port, net::node_id from, net::node_id to) {
    const op_id id = begin_migrate(port, from, to);
    run_until_complete({id});
    forget(id);
}

locate_result name_service::locate(core::port_id port, net::node_id client) {
    const op_id id = begin_locate(port, client);
    run_until_complete({id});
    return take_result(id);
}

locate_result name_service::locate_fresh(core::port_id port, net::node_id client) {
    const op_id id = begin_locate_fresh(port, client);
    run_until_complete({id});
    return take_result(id);
}

locate_result name_service::locate_staged(core::port_id port, net::node_id client) {
    const op_id id = begin_locate_staged(port, client);
    run_until_complete({id});
    return take_result(id);
}

locate_result name_service::locate_with_fallback(core::port_id port, net::node_id client) {
    const op_id id = begin_locate_with_fallback(port, client);
    run_until_complete({id});
    return take_result(id);
}

void name_service::repost_all() {
    std::vector<op_id> ids;
    std::vector<std::pair<core::port_id, net::node_id>> live;
    {
        const std::shared_lock lk{reg_mu_};
        live = registrations_;
    }
    ids.reserve(live.size());
    for (const auto& [port, at] : live) {
        if (sim_->crashed(at)) continue;
        ids.push_back(begin_post_op(op_kind::post, port, at, net::invalid_node));
        arm_refresh(at);
    }
    run_until_complete(ids);
    for (const op_id id : ids) forget(id);
}

void name_service::crash_node(net::node_id v) {
    sim_->crash(v);
    {
        const std::unique_lock lk{reg_mu_};
        std::erase_if(registrations_, [&](const auto& reg) { return reg.second == v; });
    }
    // A pending refresh timer is silently skipped while the node is down;
    // clear the armed flag so a later repost_all can re-arm the host.
    refresh_armed_[static_cast<std::size_t>(v)] = 0;
}

void name_service::recover_node(net::node_id v) { sim_->recover(v); }

net::node_id name_service::join_node(std::span<const net::node_id> attach) {
    const net::node_id v = sim_->join(attach);
    refresh_armed_.resize(static_cast<std::size_t>(sim_->network().node_count()), 0);
    if (options_.valiant_relay)
        while (valiant_counters_.size() <
               static_cast<std::size_t>(sim_->network().node_count()))
            valiant_counters_.emplace_back(0);
    attach_service_node(v);
    return v;
}

void name_service::leave_node(net::node_id v) {
    // A leave is graceful where a crash is fail-stop: the departing machine
    // can still deregister itself, so its bindings are purged from the
    // rendezvous nodes before the simulator tears the node down.
    std::vector<core::port_id> ports;
    {
        const std::unique_lock lk{reg_mu_};
        for (const auto& [port, at] : registrations_)
            if (at == v) ports.push_back(port);
        std::erase_if(registrations_, [&](const auto& reg) { return reg.second == v; });
    }
    // Joined (churner) hosts live outside the strategy's id space and can
    // never have posted, so there is nothing to purge for them.
    if (v < strategy_->node_count())
        for (const core::port_id port : ports) purge_binding(port, v);
    refresh_armed_[static_cast<std::size_t>(v)] = 0;
    sim_->leave(v);
}

void name_service::rejoin_node(net::node_id v, std::span<const net::node_id> attach) {
    sim_->rejoin(v, attach);
    // A rejoining machine remembers nothing: fresh service_node, empty
    // caches, no registrations.
    attach_service_node(v);
}

void name_service::purge_binding(core::port_id port, net::node_id dead_address) {
    for (const net::node_id target : strategy_->post_set(dead_address, port)) {
        if (sim_->crashed(target)) continue;
        sim::message msg;
        msg.kind = msg_remove;
        msg.port = port;
        msg.source = target;  // issued by the surviving rendezvous node itself
        msg.destination = target;
        msg.subject_address = dead_address;
        msg.stamp = sim_->now();
        sim_->send(msg);  // self-addressed; no relay needed
    }
    // Self-addressed messages deliver within the current tick.
    sim_->run_until(sim_->now());
}

std::size_t name_service::total_cache_entries() const {
    std::size_t total = 0;
    for (const auto& n : nodes_) total += n->directory().size();
    return total;
}

std::size_t name_service::max_cache_entries() const {
    std::size_t best = 0;
    for (const auto& n : nodes_) best = std::max(best, n->directory().size());
    return best;
}

}  // namespace mm::runtime
