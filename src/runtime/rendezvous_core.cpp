#include "runtime/rendezvous_core.h"

namespace mm::runtime::rendezvous {

bool apply_post(core::port_cache& dir, core::port_id port, core::address where,
                std::int64_t stamp, std::int64_t ttl, std::int64_t now) {
    core::port_entry entry;
    entry.port = port;
    entry.where = where;
    entry.stamp = stamp;
    entry.expires_at = ttl >= 0 ? now + ttl : -1;
    return dir.post(entry);
}

bool apply_remove(core::port_cache& dir, core::port_id port, core::address where) {
    return dir.remove(port, where);
}

std::optional<core::port_entry> answer_query(const core::port_cache& dir, core::port_id port,
                                             std::int64_t now) {
    return dir.lookup(port, now);
}

bool reply_wins(const std::optional<core::port_entry>& current, std::int64_t incoming_stamp) {
    return !current || incoming_stamp > current->stamp;
}

}  // namespace mm::runtime::rendezvous
