// scenario.h - declarative hostile & skewed traffic scenarios over
// run_workload (the last ROADMAP tentpole: "scenario diversity").
//
// The paper designs match-making for "heavy traffic from millions of
// users"; a uniform exponential mix never shows what that traffic does to a
// strategy.  A scenario_spec describes, declaratively and reproducibly:
//
//   * arrival curves   - phases of (operations, mean inter-arrival), so a
//                        run can ramp, spike, or breathe diurnally;
//   * popularity skew  - Zipf weights over the port table (rank 1 = port 0);
//   * flash crowds     - one port's locate share surging inside an
//                        operation-index window;
//   * correlated crash bursts and partition/heal schedules - region-scoped
//     via net::partition_connected's carve, driven through the existing
//     crash/recover machinery (fail-stop bursts lose their bindings;
//     partitioned regions re-post theirs at heal time).
//
// Everything is seeded and bit-deterministic at any worker count: the
// scenario consumes exactly the workload driver's own draw stream (one
// uniform01 per port pick), injects events only at top-level arrival
// points, and feeds every load-aware decision from sim::metrics counters -
// so the blocking bench_diff gate pins the whole schedule.  See
// docs/SCENARIOS.md for the grammar, the catalog, and the determinism
// contract in full.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/workload.h"

namespace mm::strategies {
class load_aware_strategy;
}

namespace mm::runtime {

// One arrival-curve segment: `operations` issued with exponential
// inter-arrival of the given mean (0 = burst, all at one tick).
struct scenario_phase {
    int operations = 0;
    double mean_interarrival = 1.0;
};

// One port's surge: inside [first_op, last_op) each operation targets
// `port` with probability `share` (the remaining probability mass follows
// the base popularity, re-uniformized so no draws are wasted).
struct flash_crowd {
    int port = 0;  // index into the workload's port table
    double share = 0.8;
    int first_op = 0;
    int last_op = 0;
};

// Correlated regional failure: every live node of carve region `region`
// fail-stops at operation index `at_op`.  With heal_after >= 0 the region
// recovers once that much simulated time has passed (checked at arrivals).
// restore selects the semantics: false = crash burst (the machines reboot
// empty; bindings hosted there are gone), true = partition (the server
// processes survive; their bindings are re-posted when the region heals).
struct region_event {
    int at_op = 0;
    int region = 0;
    sim::time_point heal_after = -1;  // -1 = never heals during the run
    bool restore = false;
};

struct scenario_spec {
    std::string name = "custom";
    // Seed, port table, mix weights.  base.operations and
    // base.mean_interarrival apply only when `phases` is empty.
    workload_options base;
    std::vector<scenario_phase> phases;
    // Zipf skew s over port ranks (weight of port p is (p+1)^-s; 0 =
    // uniform).  s in {0, 1, 2} uses exactly-rounded arithmetic only, so
    // draws are bit-stable across toolchains; other s go through std::pow.
    double zipf_skew = 0;
    std::vector<flash_crowd> crowds;
    std::vector<region_event> outages;
    // partition_connected target region size (0 = ~sqrt(n)).
    int region_target = 0;
    // Operations between load-aware rebalances (0 = never; only meaningful
    // when run_scenario is given a tuner).
    int rebalance_every = 0;

    [[nodiscard]] int total_operations() const;
};

// Exact round-trip codec (doubles travel as IEEE bit patterns).  decode
// returns false on truncated/trailing bytes or out-of-range fields.
[[nodiscard]] std::vector<std::uint8_t> encode_scenario_spec(const scenario_spec& spec);
[[nodiscard]] bool decode_scenario_spec(const std::vector<std::uint8_t>& bytes,
                                        scenario_spec& out);

struct scenario_stats {
    workload_stats wl;
    // Load-aware feedback (all zero without a tuner).  Every quantity is
    // also bumped into sim::metrics under scenario_* dynamic counters, so
    // engine diffs and the bench gate pin them.
    std::int64_t promotions = 0;
    std::int64_t demotions = 0;
    std::int64_t hot_reposts = 0;  // tracked re-posts issued at promotions
    // Region machinery.
    std::int64_t region_crashes = 0;  // node fail-stops injected
    std::int64_t region_heals = 0;    // node recoveries injected
    std::int64_t heal_reposts = 0;    // bindings re-posted by restore heals
};

// Runs the scenario against the service.  With a tuner (which must be the
// strategy the service was built over, or wrap it), per-port draw counts
// are fed to it every rebalance_every operations and promotions re-post the
// hot port's bindings.  Deterministic: same spec + same service state =
// identical stats, at any worker count.
scenario_stats run_scenario(name_service& ns, const scenario_spec& spec,
                            strategies::load_aware_strategy* tuner = nullptr);

// --- named catalog ---------------------------------------------------------
// The scenarios bench_e22 and the fuzz canary run by name; docs/SCENARIOS.md
// documents each.  Throws std::invalid_argument for unknown names.
[[nodiscard]] std::vector<std::string> scenario_names();
[[nodiscard]] scenario_spec named_scenario(const std::string& name, int ports,
                                           int operations, std::uint64_t seed);

// --- cross-engine differential (mm_fuzz --scenario) ------------------------
// Runs the named scenario over a small hierarchy with a load-aware(
// hierarchical) strategy under two engine equality classes - the parallel
// sweep {par1 (ref), par2, par4, par8} and the serial pair {serial,
// serial-nobatch} - and diffs the full stats/counter sets class-internally.
// (The two protocol regimes legitimately differ under deferred fan-out, so
// classes are never cross-compared; see runtime/replay.h.)
struct scenario_diff_report {
    bool ok = false;
    std::string divergence;  // "<engine>: <first divergent field>" when !ok
};
[[nodiscard]] scenario_diff_report diff_scenario_engines(const std::string& name,
                                                         std::uint64_t seed);

}  // namespace mm::runtime
