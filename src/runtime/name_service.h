// name_service.h - a complete distributed name server built on the
// simulator (Sections 1.4-1.5, 2.4, 3.5, 5).
//
// This is the layer a distributed operating system (the paper's Amoeba)
// would actually link against: servers register a (port, address) binding,
// which posts it at the strategy's P set; clients locate a port, which
// queries the strategy's Q set and returns the address from the first
// rendezvous node that answers.  Registrations are timestamped so that a
// migrated server's new address beats stale cache entries; node crashes
// wipe caches (fail-stop) and servers can re-post; redundant strategies
// (#(P n Q) >= f+1) keep locates working under f faults, per Section 2.4.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/cache.h"
#include "core/strategy.h"
#include "sim/simulator.h"
#include "strategies/hierarchical.h"

namespace mm::runtime {

// Wire-format message kinds.
enum msg_kind : int {
    msg_post = 1,    // server -> rendezvous: here I am
    msg_query = 2,   // client -> rendezvous: where is port?
    msg_reply = 3,   // rendezvous -> client: port is at subject_address
    msg_remove = 4,  // server -> rendezvous: forget me
};

// Per-node behavior: every node is simultaneously a directory (rendezvous)
// node and a potential client endpoint.
class service_node final : public sim::node_handler {
public:
    explicit service_node(net::node_id self) : self_{self} {}

    void on_message(sim::simulator& sim, const sim::message& msg) override;
    void on_timer(sim::simulator& sim, std::int64_t timer_id) override;
    void on_crash(sim::simulator& sim) override;

    [[nodiscard]] core::port_cache& directory() noexcept { return directory_; }
    [[nodiscard]] const core::port_cache& directory() const noexcept { return directory_; }

    // Client-side: the reply collected for a locate tag, if any.
    [[nodiscard]] bool has_reply(std::int64_t tag) const;
    [[nodiscard]] core::port_entry reply(std::int64_t tag) const;

    // Hook invoked on timer expiry (set by the owning name_service).
    using timer_hook = std::function<void(sim::simulator&, net::node_id, std::int64_t)>;
    void set_timer_hook(timer_hook hook) { timer_hook_ = std::move(hook); }

private:
    net::node_id self_;
    core::port_cache directory_;
    std::unordered_map<std::int64_t, core::port_entry> replies_;
    timer_hook timer_hook_;
};

struct locate_result {
    bool found = false;
    core::address where = net::invalid_node;
    sim::time_point latency = 0;      // ticks from first query to answer
    std::int64_t message_passes = 0;  // hops spent by this operation
    int nodes_queried = 0;
    int stages = 1;  // staged (hierarchical) locates report the level used
};

class name_service {
public:
    // Attaches a service_node to every node of the simulator's network.
    // The strategy is the default for all operations; both must outlive the
    // name_service.
    name_service(sim::simulator& sim, const core::locate_strategy& strategy);

    // --- server side -------------------------------------------------------
    // Posts (port, at) at P(at); runs the simulator until the posts settle.
    void register_server(core::port_id port, net::node_id at);
    // Removes the binding from P(at).
    void deregister_server(core::port_id port, net::node_id at);
    // Atomic move: register at `to` with a fresh timestamp (stale caches are
    // out-ranked), then withdraw the posts of `from`.
    void migrate_server(core::port_id port, net::node_id from, net::node_id to);
    // Re-posts every live registration (recovery after crashes).
    void repost_all();

    // --- client side -------------------------------------------------------
    // Queries Q(client); runs the simulator until an answer arrives or all
    // queries provably failed.
    [[nodiscard]] locate_result locate(core::port_id port, net::node_id client);

    // Section 3.5's staged locate: query level 1 gateways first, escalate
    // level by level only on failure.  Requires the hierarchical strategy.
    [[nodiscard]] locate_result locate_staged(core::port_id port, net::node_id client,
                                              const strategies::hierarchical_strategy& h);

    // Section 5's rehash recovery: try the default strategy's rendezvous
    // first; on failure re-register live servers and retry with each
    // fallback strategy in order (e.g. hash attempts 1, 2, ...).
    [[nodiscard]] locate_result locate_with_fallback(
        core::port_id port, net::node_id client,
        const std::vector<const core::locate_strategy*>& fallbacks);

    // --- faults ------------------------------------------------------------
    // Fail-stop crash: wipes the node's directory; registrations hosted at v
    // die with it.
    void crash_node(net::node_id v);
    void recover_node(net::node_id v);

    // Purges a dead server's binding from the rendezvous nodes it posted at.
    // A fail-stop server cannot deregister itself; a survivor that detects
    // the crash can, because P(dead_address) is deterministic.  Surviving
    // replicas whose posts the dead server had shadowed become visible again
    // on their next periodic refresh (repost_all) - the paper's "services
    // regularly poll their rendez-vous nodes to see if they are still
    // alive".
    void purge_binding(core::port_id port, net::node_id dead_address);

    // --- soft-state policies -------------------------------------------------
    // Every post carries this time-to-live; rendezvous entries silently die
    // ttl ticks after arrival (-1 = never).  With auto-refresh enabled and
    // period < ttl, live servers stay cached while crashed servers'
    // bindings clean themselves up - no tombstone protocol needed.
    void set_entry_ttl(sim::time_point ttl) noexcept { entry_ttl_ = ttl; }

    // Timer-driven periodic re-posting: every server host re-advertises its
    // registrations each `period` ticks (the paper's "services regularly
    // poll their rendez-vous nodes").  Timers on crashed hosts do not fire,
    // so dead servers stop refreshing automatically.
    void enable_auto_refresh(sim::time_point period);

    // Two-phase (Valiant) relaying: posts and queries travel via a random
    // intermediate node first - Section 3.2's cure for "excessive clogging
    // at intermediate nodes".
    void enable_valiant_relay(std::uint64_t seed);

    // Client-side reply caching (Section 2.1: "Entries are made or updated
    // whenever ... a reply from a locate operation is received").  Locates
    // answered from the local cache cost zero messages; the cached address
    // is a *hint* - it can go stale until its TTL lapses or a purge removes
    // it.  Off by default.
    void enable_client_caching() noexcept { client_caching_ = true; }

    // Locate that always consults the network, bypassing the local hint.
    [[nodiscard]] locate_result locate_fresh(core::port_id port, net::node_id client);

    // Advances simulated time (timers fire, refreshes happen).
    void run_for(sim::time_point duration);

    [[nodiscard]] service_node& node(net::node_id v);
    [[nodiscard]] sim::simulator& simulator() noexcept { return *sim_; }
    [[nodiscard]] const core::locate_strategy& strategy() const noexcept { return *strategy_; }

    // Total (port, address) entries currently cached network-wide, and the
    // largest single cache - the paper's storage measures.
    [[nodiscard]] std::size_t total_cache_entries() const;
    [[nodiscard]] std::size_t max_cache_entries() const;

private:
    static constexpr std::int64_t refresh_timer_id = 1;

    sim::simulator* sim_;
    const core::locate_strategy* strategy_;
    std::vector<std::shared_ptr<service_node>> nodes_;
    std::vector<std::pair<core::port_id, net::node_id>> registrations_;
    std::int64_t next_tag_ = 1;
    sim::time_point entry_ttl_ = -1;
    sim::time_point refresh_period_ = 0;  // 0 = auto-refresh off
    std::vector<char> refresh_armed_;
    bool valiant_ = false;
    std::uint64_t valiant_state_ = 0;
    bool client_caching_ = false;

    void send_application(sim::message msg);
    void post_to(core::port_id port, net::node_id at, const core::node_set& where);
    [[nodiscard]] locate_result query_and_wait(core::port_id port, net::node_id client,
                                               const core::node_set& where);
    void drain();
    void handle_timer(sim::simulator& sim, net::node_id at, std::int64_t timer_id);
    void arm_refresh(net::node_id at);
    [[nodiscard]] net::node_id random_relay(net::node_id source, net::node_id destination);
};

}  // namespace mm::runtime
