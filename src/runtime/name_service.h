// name_service.h - a complete distributed name server built on the
// simulator (Sections 1.4-1.5, 2.4, 3.5, 5).
//
// This is the layer a distributed operating system (the paper's Amoeba)
// would actually link against: servers register a (port, address) binding,
// which posts it at the strategy's P set; clients locate a port, which
// queries the strategy's Q set and returns the address from the first
// rendezvous node that answers.  Registrations are timestamped so that a
// migrated server's new address beats stale cache entries; node crashes
// wipe caches (fail-stop) and servers can re-post; redundant strategies
// (#(P n Q) >= f+1) keep locates working under f faults, per Section 2.4.
//
// The public API is asynchronous: begin_register/begin_locate/begin_migrate
// return an op_id immediately, arbitrarily many operations overlap in one
// simulator run, and completions are collected via poll(op) or
// run_until_complete(ops).  Each operation's messages carry its op_id as
// the wire tag, so latency and message passes are accounted per operation
// (simulator::tag_hops) instead of read off global counters.  The classic
// blocking calls (register_server, locate, ...) remain as thin
// begin-then-run_until_complete wrappers.
//
// Operations progress entirely inside the event loop: each phase arms a
// timer at its settle deadline (computed exactly from routing distances),
// so escalation (staged levels, rehash fallbacks) and failure detection
// need no out-of-band polling and cost zero extra messages.
//
// --- Parallel regime --------------------------------------------------------
// When the simulator runs its sharded engine (sim::simulator::
// set_worker_threads), the name service switches into a matching regime so
// results stay bit-identical for every thread count:
//  * begin_* defers the operation's fan-out into the event loop: a
//    zero-delay start timer at the actor routes the injection through the
//    owning shard's queue, so route computation (the BFS row builds that
//    dominate million-node runs) parallelizes across shards.
//  * Migrate deadline timers run at the *old* host, whose shard owns the
//    registration withdrawal - keeping the withdrawal sequentially ordered
//    against that host's own refresh scans.  (Consequence: a migrate whose
//    old host is down when the withdrawal is due resolves as failed at the
//    run's quiescence sweep instead of completing.)
//  * Valiant relays draw from per-node counter-hashed streams seeded by
//    (valiant_seed, node) instead of one shared sequential stream.
//  * The shared registration list is guarded by a reader/writer lock; all
//    other operation state is only ever touched by its actor's shard.
// begin_*/poll/run_until_complete remain top-level calls (they throw when
// invoked from inside a parallel round).  The one documented determinism
// gap: locate_with_fallback's network-wide re-post scan reads other hosts'
// registrations, so combining fallback locates with same-tick migrations
// (or with Valiant relays) of the same port may legally reorder against the
// serial run.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <initializer_list>
#include <memory>
#include <optional>
#include <queue>
#include <shared_mutex>
#include <span>
#include <utility>
#include <vector>

#include "core/arena.h"
#include "core/cache.h"
#include "core/flat_map.h"
#include "core/strategy.h"
#include "sim/simulator.h"

namespace mm::runtime {

// Wire-format message kinds.
enum msg_kind : int {
    msg_post = 1,    // server -> rendezvous: here I am
    msg_query = 2,   // client -> rendezvous: where is port?
    msg_reply = 3,   // rendezvous -> client: port is at subject_address
    msg_remove = 4,  // server -> rendezvous: forget me
};

// Per-node behavior: every node is simultaneously a directory (rendezvous)
// node and a potential client endpoint.
class service_node final : public sim::node_handler {
public:
    explicit service_node(net::node_id self) : self_{self} {}

    void on_message(sim::simulator& sim, const sim::message& msg) override;
    void on_timer(sim::simulator& sim, std::int64_t timer_id) override;
    void on_crash(sim::simulator& sim) override;

    [[nodiscard]] core::port_cache& directory() noexcept { return directory_; }
    [[nodiscard]] const core::port_cache& directory() const noexcept { return directory_; }

    // Client-side hint cache (Section 2.1's "entries are made ... whenever a
    // reply from a locate operation is received").  Kept separate from the
    // rendezvous directory so a node's stale hints never answer *network*
    // queries - they only short-circuit this node's own locates, and
    // locate_fresh really does bypass them.
    [[nodiscard]] core::port_cache& hints() noexcept { return hints_; }
    [[nodiscard]] const core::port_cache& hints() const noexcept { return hints_; }

    // Client-side: the reply collected for a locate tag, if any.
    [[nodiscard]] bool has_reply(std::int64_t tag) const;
    [[nodiscard]] core::port_entry reply(std::int64_t tag) const;

    // Hook invoked on timer expiry (set by the owning name_service).
    using timer_hook = std::function<void(sim::simulator&, net::node_id, std::int64_t)>;
    void set_timer_hook(timer_hook hook) { timer_hook_ = std::move(hook); }

    // Hook invoked when a locate reply arrives (set by the owning
    // name_service; completes the operation the tag belongs to).
    using reply_hook = std::function<void(sim::simulator&, std::int64_t /*tag*/)>;
    void set_reply_hook(reply_hook hook) { reply_hook_ = std::move(hook); }

private:
    net::node_id self_;
    core::port_cache directory_;
    core::port_cache hints_;
    core::flat_map<core::port_entry> replies_;  // keyed by op tag (ids start at 1)
    timer_hook timer_hook_;
    reply_hook reply_hook_;
};

// Handle to an in-flight asynchronous operation.
using op_id = std::int64_t;

// Per-operation outcome and cost accounting.  Post-style operations
// (register/deregister/migrate/purge) report found = true once their posts
// settled, with `where` the (new) host.
struct locate_result {
    bool found = false;
    core::address where = net::invalid_node;
    sim::time_point latency = 0;      // ticks from issue to answer/settle
    std::int64_t message_passes = 0;  // hops spent by this operation alone
    int nodes_queried = 0;
    int stages = 1;  // staged/fallback locates report the attempt that hit
    sim::time_point issued_at = 0;
    sim::time_point completed_at = 0;
};

class name_service {
public:
    // Declarative construction-time policy; replaces the old set_entry_ttl /
    // enable_auto_refresh / enable_valiant_relay / enable_client_caching
    // mutator spread.
    struct options {
        // Every post carries this time-to-live; rendezvous entries silently
        // die ttl ticks after arrival (-1 = never).  With refresh_period <
        // entry_ttl, live servers stay cached while crashed servers'
        // bindings clean themselves up - no tombstone protocol needed.
        sim::time_point entry_ttl = -1;
        // Timer-driven periodic re-posting: every server host re-advertises
        // its registrations each refresh_period ticks ("services regularly
        // poll their rendez-vous nodes").  0 = off.  Timers on crashed
        // hosts do not fire, so dead servers stop refreshing automatically.
        sim::time_point refresh_period = 0;
        // Client-side reply caching (Section 2.1): locates answered from the
        // local cache cost zero messages; the cached address is a *hint*
        // that can go stale until its TTL lapses or a purge removes it.
        bool client_caching = false;
        // Two-phase (Valiant) relaying: posts and queries travel via a
        // random intermediate node first - Section 3.2's cure for
        // "excessive clogging at intermediate nodes".
        bool valiant_relay = false;
        std::uint64_t valiant_seed = 1;
    };

    // Attaches a service_node to every node of the simulator's network.
    // The strategy is the default for all operations; both must outlive the
    // name_service.
    name_service(sim::simulator& sim, const core::locate_strategy& strategy, options opts);
    name_service(sim::simulator& sim, const core::locate_strategy& strategy);

    // --- asynchronous operation handles ------------------------------------
    // Each begin_* issues the operation's first messages immediately and
    // returns; the operation then advances inside the event loop.  Any
    // number of operations may be in flight at once.

    // Posts (port, at) at P(at); completes when the posts settled.
    op_id begin_register(core::port_id port, net::node_id at);
    // Removes the binding from P(at).
    op_id begin_deregister(core::port_id port, net::node_id at);
    // Atomic move: posts at `to` with a fresh timestamp (stale caches are
    // out-ranked), then - once those posts settled - withdraws `from`'s.
    op_id begin_migrate(core::port_id port, net::node_id from, net::node_id to);
    // Queries Q(client); completes at the first reply, or once every query
    // provably failed (exact settle deadline, no extra messages).
    op_id begin_locate(core::port_id port, net::node_id client);
    // Locate that always consults the network, bypassing the local hint.
    op_id begin_locate_fresh(core::port_id port, net::node_id client);
    // Section 3.5's staged locate: query stage 1 first, escalate stage by
    // stage only on failure.  Uses the strategy's staging capability
    // (staged_levels / staged_query_set); for strategies without staging it
    // degenerates to a plain locate.
    op_id begin_locate_staged(core::port_id port, net::node_id client);
    // Section 5's rehash recovery: try the default strategy's rendezvous
    // first; on failure re-post live servers at each strategy of
    // strategy().fallback_chain() in order and retry there.
    op_id begin_locate_with_fallback(core::port_id port, net::node_id client);

    // Completed result, if the operation finished.  message_passes reads the
    // operation's live per-tag hop counter, so stragglers still in flight
    // finalize once the run drains.
    [[nodiscard]] std::optional<locate_result> poll(op_id op) const;
    // Runs the simulator until every listed operation completed (or nothing
    // can make progress anymore, which fails the survivors - e.g. a locate
    // whose client host crashed mid-operation).
    void run_until_complete(std::span<const op_id> ops);
    void run_until_complete(std::initializer_list<op_id> ops) {
        run_until_complete(std::span<const op_id>{ops.begin(), ops.size()});
    }
    // Forgets a completed operation and releases its accounting (optional;
    // useful for million-operation workloads).  Throws std::logic_error for
    // an operation still in flight - abandoning e.g. a half-done migrate
    // would strand its second leg.
    void forget(op_id op);

    // --- synchronous wrappers (begin + run_until_complete) -----------------
    void register_server(core::port_id port, net::node_id at);
    void deregister_server(core::port_id port, net::node_id at);
    void migrate_server(core::port_id port, net::node_id from, net::node_id to);
    [[nodiscard]] locate_result locate(core::port_id port, net::node_id client);
    [[nodiscard]] locate_result locate_fresh(core::port_id port, net::node_id client);
    [[nodiscard]] locate_result locate_staged(core::port_id port, net::node_id client);
    [[nodiscard]] locate_result locate_with_fallback(core::port_id port, net::node_id client);

    // Re-posts every live registration (recovery after crashes).
    void repost_all();

    // --- faults ------------------------------------------------------------
    // Fail-stop crash: wipes the node's directory; registrations hosted at v
    // die with it.
    void crash_node(net::node_id v);
    void recover_node(net::node_id v);

    // --- dynamic membership -------------------------------------------------
    // Requires a simulator built over a mutable graph (topology_mutable());
    // top-level calls, like crash_node.  join_node adds a fresh node wired to
    // the present nodes in `attach`, equips it with a service_node and
    // returns its id; leave_node removes a node for good (its registrations
    // and directory die with it, in-flight traffic through it is dropped at
    // its hop); rejoin_node brings a departed id back with new attachment
    // edges and a fresh, empty service_node (a rejoining machine remembers
    // nothing).
    net::node_id join_node(std::span<const net::node_id> attach);
    void leave_node(net::node_id v);
    void rejoin_node(net::node_id v, std::span<const net::node_id> attach);

    // Purges a dead server's binding from the rendezvous nodes it posted at.
    // A fail-stop server cannot deregister itself; a survivor that detects
    // the crash can, because P(dead_address) is deterministic.  Surviving
    // replicas whose posts the dead server had shadowed become visible again
    // on their next periodic refresh (repost_all) - the paper's "services
    // regularly poll their rendez-vous nodes to see if they are still
    // alive".
    void purge_binding(core::port_id port, net::node_id dead_address);

    // Advances simulated time (timers fire, refreshes happen, in-flight
    // operations progress).
    void run_for(sim::time_point duration);

    [[nodiscard]] service_node& node(net::node_id v);
    [[nodiscard]] sim::simulator& simulator() noexcept { return *sim_; }
    [[nodiscard]] const core::locate_strategy& strategy() const noexcept { return *strategy_; }
    [[nodiscard]] const options& policy() const noexcept { return options_; }

    // Total (port, address) entries currently cached network-wide, and the
    // largest single cache - the paper's storage measures.
    [[nodiscard]] std::size_t total_cache_entries() const;
    [[nodiscard]] std::size_t max_cache_entries() const;

private:
    static constexpr std::int64_t refresh_timer_id = 1;

    enum class op_kind { post, remove, migrate, locate, locate_staged, locate_fallback };
    enum class op_phase { posting, querying };

    struct operation {
        op_kind kind = op_kind::locate;
        op_phase phase = op_phase::querying;
        core::port_id port = 0;
        net::node_id actor = net::invalid_node;  // client / (new) host
        net::node_id migrate_from = net::invalid_node;
        int stage = 0;  // 1-based attempt/level currently running
        bool use_cache = false;
        bool complete = false;
        bool watched = false;  // counted in watched_pending_ (run_until_complete)
        // False while a parallel-regime operation waits for its zero-delay
        // start timer to route the fan-out through the actor's shard.
        bool started = true;
        sim::time_point phase_deadline = 0;
        locate_result result;
        core::node_set queried;  // staged dedup across levels
        // Fallback chain snapshot, fetched once at begin (the pointed-to
        // strategies are owned by the primary strategy and outlive the op).
        std::vector<const core::locate_strategy*> fallbacks;
    };

    sim::simulator* sim_;
    const core::locate_strategy* strategy_;
    options options_;
    std::vector<std::shared_ptr<service_node>> nodes_;
    // Who hosts what.  Mutated at top level and - for migrate withdrawals -
    // from inside the event loop; cross-shard readers (refresh scans,
    // fallback re-posts) take the shared side of reg_mu_.
    std::vector<std::pair<core::port_id, net::node_id>> registrations_;
    mutable std::shared_mutex reg_mu_;
    // Hot op index: op_id -> slab row.  The flat map keeps the id probe one
    // cache line; the slab recycles rows, so a retired operation's node_set
    // and fallback-chain capacity is reused by later operations instead of
    // being reallocated per op (million-operation workloads churn here).
    core::flat_map<std::uint32_t> op_index_;
    core::soa_arena<operation> op_slab_;
    op_id next_op_ = 1;
    // Listed-and-pending ops of the active run_until_complete; decremented
    // by completions, which under the parallel engine land on worker threads.
    std::atomic<std::size_t> watched_pending_{0};
    // Forgotten ops whose tag counter cannot be released yet because their
    // messages may still be in flight: (safe-release tick, tag), min-first.
    std::priority_queue<std::pair<sim::time_point, op_id>,
                        std::vector<std::pair<sim::time_point, op_id>>,
                        std::greater<>>
        retired_tags_;
    std::vector<char> refresh_armed_;
    std::uint64_t valiant_state_ = 0;
    // Parallel regime: per-node Valiant draw counters (see random_relay).
    // A deque so join_node can grow it in place (atomics cannot relocate).
    std::deque<std::atomic<std::uint64_t>> valiant_counters_;

    // Op-index plumbing over op_index_ + op_slab_.  Pointers/references are
    // stable until the next insert_op (the slab vector may then grow); no
    // call path holds one across an insert.
    [[nodiscard]] operation* find_op(op_id id) noexcept;
    [[nodiscard]] const operation* find_op(op_id id) const noexcept;
    [[nodiscard]] operation& op_at(op_id id);
    operation& insert_op(op_id id, operation&& op);
    void erase_op(op_id id);

    // Sends through the (optional) Valiant relay and returns the exact tick
    // the message settles at its final destination (routing distances are
    // deterministic; all shortest paths have equal length).
    sim::time_point send_application(sim::message msg);
    // Posts (port, at) at `where` with messages tagged `tag`; returns the
    // settle tick of the slowest post.
    sim::time_point post_to(core::port_id port, net::node_id at, const core::node_set& where,
                            std::int64_t tag);
    sim::time_point remove_from(core::port_id port, net::node_id at, const core::node_set& where,
                                std::int64_t tag);
    // Issues one stage of queries and returns the latest possible reply tick.
    sim::time_point issue_queries(operation& op, op_id id, const core::node_set& where);
    op_id begin_locate_op(op_kind kind, core::port_id port, net::node_id client, bool use_cache);
    // Shared construction of the post-kind operations (register, deregister,
    // migrate leg 1, repost).
    op_id begin_post_op(op_kind kind, core::port_id port, net::node_id actor,
                        net::node_id migrate_from);
    // True when the simulator runs the sharded engine and begin_* therefore
    // routes fan-out through the actor's shard (see the header contract).
    [[nodiscard]] bool deferred() const noexcept;
    // Issues the operation's first messages (immediately at begin in the
    // serial regime; from the actor-shard start timer in the parallel one).
    void start_op(operation& op, op_id id);
    // Node whose shard owns the operation's deadline timers.
    [[nodiscard]] net::node_id op_timer_node(const operation& op) const;
    // Starts the posting or querying leg of the operation's current stage.
    void start_stage(operation& op, op_id id);
    [[nodiscard]] const core::locate_strategy* stage_strategy(const operation& op) const;
    void arm_op_timer(const operation& op, op_id id);
    void advance_op(op_id id);
    void complete_op(operation& op, bool found, core::address where, sim::time_point at);
    [[nodiscard]] locate_result take_result(op_id id);
    void handle_timer(sim::simulator& sim, net::node_id at, std::int64_t timer_id);
    void handle_reply(sim::simulator& sim, std::int64_t tag);
    void arm_refresh(net::node_id at);
    [[nodiscard]] net::node_id random_relay(net::node_id source, net::node_id destination);
    // Builds a fresh service_node wired to this name_service's hooks and
    // attaches it at v (construction, join_node, rejoin_node).
    void attach_service_node(net::node_id v);
};

}  // namespace mm::runtime
