// rendezvous_core.h - the transport-agnostic rendezvous-node state
// machine, extracted from service_node so the simulator path and the real
// mmd daemon run the *same* code for Section 2.1's cache discipline.
//
// A rendezvous node's entire behavior is three transitions over its
// port_cache plus one client-side merge rule:
//   post   -> store (port, address) stamped, TTL-bounded; stale posts lose;
//   remove -> drop the binding iff it still names that address;
//   query  -> answer with the current unexpired binding, if any;
//   reply  -> (client side) keep the freshest of several answers.
// runtime::service_node::on_message dispatches into these helpers inside
// the simulator; daemon::mmd_server dispatches into them off a TCP frame.
// The loopback oracle suite (tests/test_daemon_loopback.cpp) is what keeps
// the two substrates glued to identical visible results.
#pragma once

#include <cstdint>
#include <optional>

#include "core/cache.h"

namespace mm::runtime::rendezvous {

// Applies a post: stores (port -> where) stamped `stamp`, expiring at
// now + ttl (ttl < 0 = never).  Returns false when a fresher binding won.
bool apply_post(core::port_cache& dir, core::port_id port, core::address where,
                std::int64_t stamp, std::int64_t ttl, std::int64_t now);

// Applies a remove: drops the binding iff it still maps to `where`.
bool apply_remove(core::port_cache& dir, core::port_id port, core::address where);

// Answers a query against the directory at time `now` (expiry respected).
[[nodiscard]] std::optional<core::port_entry> answer_query(const core::port_cache& dir,
                                                           core::port_id port,
                                                           std::int64_t now);

// Client-side first-answer merge: should an incoming reply stamped
// `incoming_stamp` replace `current`?  (Keep the freshest binding if
// several rendezvous nodes answer.)
[[nodiscard]] bool reply_wins(const std::optional<core::port_entry>& current,
                              std::int64_t incoming_stamp);

}  // namespace mm::runtime::rendezvous
