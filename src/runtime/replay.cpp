#include "runtime/replay.h"

#include <sstream>
#include <utility>

#include "net/hierarchy.h"
#include "net/topologies.h"
#include "sim/rng.h"
#include "strategies/cube.h"
#include "strategies/grid.h"
#include "strategies/hash_locate.h"
#include "strategies/hierarchical.h"

namespace mm::runtime {

namespace {

net::graph build_graph(const replay_config& cfg) {
    switch (cfg.topology) {
        case replay_topology::grid: return net::make_grid(cfg.p1, cfg.p2);
        case replay_topology::torus:
            return net::make_grid(cfg.p1, cfg.p2, net::wrap_mode::torus);
        case replay_topology::hypercube: return net::make_hypercube(cfg.p1);
        case replay_topology::hierarchical:
            return net::make_hierarchical_graph(net::hierarchy{{cfg.p1, cfg.p2}});
    }
    throw std::invalid_argument{"replay: bad topology"};
}

std::unique_ptr<core::locate_strategy> build_strategy(const replay_config& cfg) {
    if (cfg.strategy == replay_strategy::hash)
        return std::make_unique<strategies::hash_locate_strategy>(cfg.node_count(), 2);
    switch (cfg.topology) {
        case replay_topology::grid:
        case replay_topology::torus:
            return std::make_unique<strategies::manhattan_strategy>(cfg.p1, cfg.p2);
        case replay_topology::hypercube:
            return std::make_unique<strategies::hypercube_strategy>(cfg.p1);
        case replay_topology::hierarchical:
            return std::make_unique<strategies::hierarchical_strategy>(
                net::hierarchy{{cfg.p1, cfg.p2}});
    }
    throw std::invalid_argument{"replay: bad strategy"};
}

bool has_devolution(const workload_options& wl) {
    return wl.crash_weight > 0 || wl.join_weight > 0 || wl.leave_weight > 0 ||
           wl.rejoin_weight > 0;
}

bool has_churn(const workload_options& wl) {
    return wl.join_weight > 0 || wl.leave_weight > 0 || wl.rejoin_weight > 0;
}

const char* topology_name(replay_topology t) {
    switch (t) {
        case replay_topology::grid: return "grid";
        case replay_topology::torus: return "torus";
        case replay_topology::hypercube: return "hypercube";
        case replay_topology::hierarchical: return "hierarchical";
    }
    return "?";
}

// Builds the final digest the trace format stores for a finished run.  The
// hop counter and traffic hash are exact only at quiescence; a config with
// periodic refresh never quiesces (run_workload drains a bounded window
// instead), and a batched refresh post still in flight at the horizon makes
// both instant-dependent across engines - so those two fields are zeroed
// for refresh configs, symmetrically at record and replay time.
sim::trace_final_digest make_summary(const replay_config& cfg, const run_result& r) {
    sim::trace_final_digest d;
    d.now = r.now;
    d.sent = r.sent;
    d.delivered = r.delivered;
    d.dropped = r.dropped;
    d.membership_events = r.membership_events;
    if (cfg.policy.refresh_period <= 0) {
        d.hops = r.hops;
        d.traffic_hash = r.traffic_hash;
    }
    return d;
}

// First divergent field between two runs of the same config, or empty.
// The field set mirrors tests/test_churn.cpp's expect_equal_runs; hop-
// derived quantities are skipped for refresh configs (see make_summary).
std::string diff_results(const replay_config& cfg, const run_result& a, const run_result& b) {
    std::ostringstream os;
    auto check = [&os](const char* name, auto va, auto vb) {
        if (os.tellp() == 0 && va != vb)
            os << name << ": " << va << " vs " << vb;
    };
    const bool quiescent = cfg.policy.refresh_period <= 0;
    if (quiescent) {
        check("hops", a.hops, b.hops);
        check("traffic_hash", a.traffic_hash, b.traffic_hash);
        check("global_message_passes", a.stats.global_message_passes,
              b.stats.global_message_passes);
    }
    check("sent", a.sent, b.sent);
    check("delivered", a.delivered, b.delivered);
    check("dropped", a.dropped, b.dropped);
    check("membership_events", a.membership_events, b.membership_events);
    check("trace_records", a.trace_records, b.trace_records);
    check("trace_digests", a.trace_digests, b.trace_digests);
    check("now", a.now, b.now);
    check("live_nodes", a.live_nodes, b.live_nodes);
    check("issued", a.stats.issued, b.stats.issued);
    check("completed", a.stats.completed, b.stats.completed);
    check("locates", a.stats.locates, b.stats.locates);
    check("locates_found", a.stats.locates_found, b.stats.locates_found);
    check("crashes", a.stats.crashes, b.stats.crashes);
    check("joins", a.stats.joins, b.stats.joins);
    check("leaves", a.stats.leaves, b.stats.leaves);
    check("rejoins", a.stats.rejoins, b.stats.rejoins);
    check("per_op_message_passes", a.stats.per_op_message_passes,
          b.stats.per_op_message_passes);
    check("max_in_flight", a.stats.max_in_flight, b.stats.max_in_flight);
    check("makespan", a.stats.makespan, b.stats.makespan);
    check("latency_p50", a.stats.latency_p50, b.stats.latency_p50);
    check("latency_p95", a.stats.latency_p95, b.stats.latency_p95);
    check("latency_p99", a.stats.latency_p99, b.stats.latency_p99);
    check("latency_max", a.stats.latency_max, b.stats.latency_max);
    if (os.tellp() != 0) return os.str();
    if (a.stats.results.size() != b.stats.results.size()) {
        os << "results count: " << a.stats.results.size() << " vs " << b.stats.results.size();
        return os.str();
    }
    for (std::size_t i = 0; i < a.stats.results.size(); ++i) {
        const auto& ra = a.stats.results[i];
        const auto& rb = b.stats.results[i];
        const bool passes_ok = !quiescent || ra.message_passes == rb.message_passes;
        if (ra.found == rb.found && ra.where == rb.where && ra.latency == rb.latency &&
            passes_ok && ra.nodes_queried == rb.nodes_queried && ra.stages == rb.stages &&
            ra.issued_at == rb.issued_at && ra.completed_at == rb.completed_at)
            continue;
        os << "op " << i << ": (found " << ra.found << " where " << ra.where << " latency "
           << ra.latency << " passes " << ra.message_passes << " issued " << ra.issued_at
           << " completed " << ra.completed_at << ") vs (found " << rb.found << " where "
           << rb.where << " latency " << rb.latency << " passes " << rb.message_passes
           << " issued " << rb.issued_at << " completed " << rb.completed_at << ")";
        return os.str();
    }
    return {};
}

}  // namespace

net::node_id replay_config::node_count() const {
    switch (topology) {
        case replay_topology::hypercube: return net::node_id{1} << p1;
        case replay_topology::grid:
        case replay_topology::torus:
        case replay_topology::hierarchical: return p1 * p2;
    }
    return 0;
}

std::string replay_config::describe() const {
    std::ostringstream os;
    os << topology_name(topology) << " " << p1;
    if (topology != replay_topology::hypercube) os << "x" << p2;
    os << " (" << node_count() << " nodes) | "
       << (strategy == replay_strategy::hash ? "hash" : "native") << " | "
       << workload.operations << " ops seed " << workload.seed;
    if (workload.mean_interarrival == 0) os << " burst";
    if (workload.crash_weight > 0) os << " +crash";
    if (workload.join_weight > 0 || workload.leave_weight > 0) os << " +churn";
    if (policy.entry_ttl >= 0) os << " ttl=" << policy.entry_ttl;
    if (policy.refresh_period > 0) os << " refresh=" << policy.refresh_period;
    if (policy.client_caching) os << " caching";
    if (policy.valiant_relay) os << " valiant";
    return os.str();
}

std::vector<std::uint8_t> encode_replay_config(const replay_config& cfg) {
    core::byte_writer w;
    w.u8(static_cast<std::uint8_t>(cfg.topology));
    w.i32(cfg.p1);
    w.i32(cfg.p2);
    w.u8(static_cast<std::uint8_t>(cfg.strategy));
    w.i64(cfg.policy.entry_ttl);
    w.i64(cfg.policy.refresh_period);
    w.u8(cfg.policy.client_caching ? 1 : 0);
    w.u8(cfg.policy.valiant_relay ? 1 : 0);
    w.u64(cfg.policy.valiant_seed);
    w.u64(cfg.workload.seed);
    w.i32(cfg.workload.operations);
    w.f64(cfg.workload.mean_interarrival);
    w.i32(cfg.workload.ports);
    w.i32(cfg.workload.servers_per_port);
    w.f64(cfg.workload.locate_weight);
    w.f64(cfg.workload.register_weight);
    w.f64(cfg.workload.migrate_weight);
    w.f64(cfg.workload.crash_weight);
    w.i64(cfg.workload.crash_downtime);
    w.f64(cfg.workload.join_weight);
    w.f64(cfg.workload.leave_weight);
    w.f64(cfg.workload.rejoin_weight);
    w.i32(cfg.workload.join_edges);
    return w.bytes();
}

bool decode_replay_config(const std::vector<std::uint8_t>& bytes, replay_config& out) {
    core::byte_reader r{bytes.data(), bytes.size()};
    replay_config cfg;
    const std::uint8_t topology = r.u8();
    cfg.p1 = r.i32();
    cfg.p2 = r.i32();
    const std::uint8_t strategy = r.u8();
    cfg.policy.entry_ttl = r.i64();
    cfg.policy.refresh_period = r.i64();
    cfg.policy.client_caching = r.u8() != 0;
    cfg.policy.valiant_relay = r.u8() != 0;
    cfg.policy.valiant_seed = r.u64();
    cfg.workload.seed = r.u64();
    cfg.workload.operations = r.i32();
    cfg.workload.mean_interarrival = r.f64();
    cfg.workload.ports = r.i32();
    cfg.workload.servers_per_port = r.i32();
    cfg.workload.locate_weight = r.f64();
    cfg.workload.register_weight = r.f64();
    cfg.workload.migrate_weight = r.f64();
    cfg.workload.crash_weight = r.f64();
    cfg.workload.crash_downtime = r.i64();
    cfg.workload.join_weight = r.f64();
    cfg.workload.leave_weight = r.f64();
    cfg.workload.rejoin_weight = r.f64();
    cfg.workload.join_edges = r.i32();
    if (!r.exhausted()) return false;
    if (topology > static_cast<std::uint8_t>(replay_topology::hierarchical)) return false;
    if (strategy > static_cast<std::uint8_t>(replay_strategy::hash)) return false;
    cfg.topology = static_cast<replay_topology>(topology);
    cfg.strategy = static_cast<replay_strategy>(strategy);
    if (cfg.p1 < 1 || cfg.p1 > 20 || cfg.p2 < 0 || cfg.p2 > 1 << 20) return false;
    if (cfg.workload.operations < 0 || cfg.workload.operations > 10'000'000) return false;
    out = cfg;
    return true;
}

std::string engine_config::name() const {
    if (workers == 0) return batched ? "serial" : "serial-nobatch";
    return (batched ? "par" : "par-nobatch") + std::to_string(workers);
}

std::vector<engine_config> engine_sweep(const replay_config& cfg) {
    // Valiant relaying and crash/churn each select a different protocol
    // regime under the plain serial engine (the why lives on the replay.h
    // declaration), so those configs get par1 as the canonical
    // single-threaded stand-in.
    const bool serial_comparable =
        !cfg.policy.valiant_relay && !has_devolution(cfg.workload);
    const int single = serial_comparable ? 0 : 1;
    std::vector<engine_config> out;
    out.push_back({.workers = single, .batched = true});
    // The hop-by-hop engine sits outside churn configs' equality sets at
    // every record level: leave()'s devolution re-keys in-flight batched
    // arrivals into drain order - the batched engines' canonical order by
    // definition - so a hop-by-hop run's same-node handler interleaving
    // (and with it forwarded-message content) legitimately differs.  Its
    // devolution semantics are covered by tests/test_churn.cpp's directed
    // cases instead.
    if (!has_churn(cfg.workload)) out.push_back({.workers = single, .batched = false});
    out.push_back({.workers = 2, .batched = true});
    out.push_back({.workers = 4, .batched = true});
    out.push_back({.workers = 8, .batched = true});
    return out;
}

sim::trace_order replay_order(const replay_config& cfg, const engine_config& engine) {
    (void)cfg;
    return engine.batched ? sim::trace_order::ordered : sim::trace_order::per_tick_set;
}

run_result run_config(const replay_config& cfg, const engine_config& engine,
                      sim::trace_observer* observer) {
    net::graph g = build_graph(cfg);
    sim::simulator sim{g};
    // Canonical paths always: route tie-breaks become a pure function of
    // the endpoints, which is what puts the plain serial engine inside the
    // cross-engine equality set (and is already forced in parallel mode).
    sim.set_canonical_paths(true);
    if (engine.workers > 0) sim.set_worker_threads(engine.workers);
    sim.set_batched_delivery(engine.batched);
    const auto strategy = build_strategy(cfg);
    name_service ns{sim, *strategy, cfg.policy};
    sim.set_trace_observer(observer);
    run_result out;
    out.stats = run_workload(ns, cfg.workload);
    sim.flush_trace();
    sim.set_trace_observer(nullptr);
    out.hops = sim.stats().get(sim::counter_hops);
    out.sent = sim.stats().get(sim::counter_messages_sent);
    out.delivered = sim.stats().get(sim::counter_messages_delivered);
    out.dropped = sim.stats().get(sim::counter_messages_dropped);
    out.membership_events = sim.stats().get(sim::counter_membership_events);
    out.trace_records = sim.stats().get(sim::counter_trace_records);
    out.trace_digests = sim.stats().get(sim::counter_trace_digests);
    out.now = sim.now();
    out.traffic_hash = sim::trace_traffic_hash(sim);
    out.live_nodes = g.live_node_count();
    return out;
}

sim::trace record_trace(const replay_config& cfg, const engine_config& engine) {
    sim::trace_recorder recorder;
    const run_result r = run_config(cfg, engine, &recorder);
    sim::trace t = std::move(recorder.result());
    t.config = encode_replay_config(cfg);
    t.summary = make_summary(cfg, r);
    return t;
}

replay_report replay_trace(const sim::trace& reference, const engine_config& engine) {
    replay_config cfg;
    if (!decode_replay_config(reference.config, cfg))
        return {.ok = false, .failure = "trace carries an undecodable config blob"};
    sim::trace_checker checker{reference, replay_order(cfg, engine)};
    const run_result r = run_config(cfg, engine, &checker);
    checker.finalize(make_summary(cfg, r));
    if (!checker.ok()) return {.ok = false, .failure = checker.failure()};
    return {.ok = true, .failure = {}};
}

diff_report diff_engines(const replay_config& cfg) {
    // A throw anywhere in a run (a config tripping an engine invariant) is
    // itself a finding the fuzzer must localize, not a process abort.
    const auto engines = engine_sweep(cfg);
    sim::trace golden;
    run_result reference;
    try {
        sim::trace_recorder recorder;
        reference = run_config(cfg, engines.front(), &recorder);
        golden = std::move(recorder.result());
        golden.config = encode_replay_config(cfg);
        golden.summary = make_summary(cfg, reference);
    } catch (const std::exception& e) {
        return {.ok = false,
                .divergence = engines.front().name() + ": exception: " + e.what()};
    }
    for (std::size_t i = 1; i < engines.size(); ++i) {
        try {
            sim::trace_checker checker{golden, replay_order(cfg, engines[i])};
            const run_result live = run_config(cfg, engines[i], &checker);
            checker.finalize(make_summary(cfg, live));
            if (!checker.ok())
                return {.ok = false,
                        .divergence = engines[i].name() + " vs " + engines.front().name() +
                                      ": " + checker.failure()};
            const std::string diff = diff_results(cfg, reference, live);
            if (!diff.empty())
                return {.ok = false,
                        .divergence = engines[i].name() + " vs " + engines.front().name() +
                                      ": " + diff};
        } catch (const std::exception& e) {
            return {.ok = false,
                    .divergence = engines[i].name() + ": exception: " + e.what()};
        }
    }
    return {.ok = true, .divergence = {}};
}

replay_config random_config(std::uint64_t seed) {
    // splitmix64 chain: libc-independent, so seed k names the same config
    // on every platform and forever.
    std::uint64_t s = seed ^ 0x9e3779b97f4a7c15ULL;
    const auto next = [&s] { return s = sim::splitmix64(s); };
    const auto pick = [&](std::uint64_t m) { return next() % m; };

    replay_config cfg;
    switch (pick(4)) {
        case 0:
            cfg.topology = replay_topology::grid;
            cfg.p1 = static_cast<std::int32_t>(4 + pick(5));
            cfg.p2 = static_cast<std::int32_t>(4 + pick(5));
            break;
        case 1:
            cfg.topology = replay_topology::torus;
            cfg.p1 = static_cast<std::int32_t>(4 + pick(5));
            cfg.p2 = static_cast<std::int32_t>(4 + pick(5));
            break;
        case 2:
            cfg.topology = replay_topology::hypercube;
            cfg.p1 = static_cast<std::int32_t>(3 + pick(3));
            cfg.p2 = 0;
            break;
        default:
            cfg.topology = replay_topology::hierarchical;
            cfg.p1 = static_cast<std::int32_t>(3 + pick(3));
            cfg.p2 = static_cast<std::int32_t>(3 + pick(3));
            break;
    }
    cfg.strategy = pick(4) == 0 ? replay_strategy::hash : replay_strategy::native;

    switch (pick(3)) {
        case 0: cfg.policy.entry_ttl = -1; break;
        case 1: cfg.policy.entry_ttl = 60; break;
        default: cfg.policy.entry_ttl = 120; break;
    }
    cfg.policy.refresh_period = pick(4) == 0 ? 30 : 0;
    cfg.policy.client_caching = pick(2) == 0;
    cfg.policy.valiant_relay = pick(8) == 0;
    cfg.policy.valiant_seed = 1 + pick(1000);

    auto& wl = cfg.workload;
    wl.seed = next();
    wl.operations = static_cast<int>(60 + pick(141));
    switch (pick(4)) {
        case 0: wl.mean_interarrival = 0; break;  // burst
        case 1: wl.mean_interarrival = 0.5; break;
        case 2: wl.mean_interarrival = 1.0; break;
        default: wl.mean_interarrival = 2.0; break;
    }
    wl.ports = static_cast<int>(4 + pick(9));
    wl.servers_per_port = static_cast<int>(1 + pick(2));
    wl.locate_weight = 0.60 + 0.01 * static_cast<double>(pick(26));
    wl.register_weight = 0.03 + 0.01 * static_cast<double>(pick(4));
    wl.migrate_weight = 0.03 + 0.01 * static_cast<double>(pick(4));
    wl.crash_weight = pick(3) == 0 ? 0.04 : 0.0;
    wl.crash_downtime = static_cast<sim::time_point>(20 + pick(41));
    if (pick(3) == 0) {
        wl.join_weight = 0.05;
        wl.leave_weight = 0.03;
        wl.rejoin_weight = 0.02;
        wl.join_edges = 2;
    }
    return cfg;
}

}  // namespace mm::runtime
