#include "runtime/scenario.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "core/codec.h"
#include "net/hierarchy.h"
#include "net/partition.h"
#include "strategies/hierarchical.h"
#include "strategies/load_aware.h"

namespace mm::runtime {

namespace {

// Zipf weight of 1-based rank r.  Integer skews avoid std::pow: division
// and multiplication are exactly rounded by IEEE-754, so the catalog's
// draws are bit-stable across toolchains (pow is not correctly rounded and
// may differ between libms).
double zipf_weight(int rank, double s) {
    if (s == 0) return 1.0;
    if (s == 1) return 1.0 / static_cast<double>(rank);
    if (s == 2) return 1.0 / (static_cast<double>(rank) * static_cast<double>(rank));
    return std::pow(static_cast<double>(rank), -s);
}

// Cumulative (unnormalized) popularity over port ranks; pick_port draws by
// scaled inverse CDF in O(log ports).
std::vector<double> zipf_cdf(int ports, double s) {
    std::vector<double> cdf(static_cast<std::size_t>(ports));
    double total = 0;
    for (int p = 0; p < ports; ++p) {
        total += zipf_weight(p + 1, s);
        cdf[static_cast<std::size_t>(p)] = total;
    }
    return cdf;
}

int pick_from_cdf(const std::vector<double>& cdf, double u) {
    const double target = u * cdf.back();
    const auto it = std::upper_bound(cdf.begin(), cdf.end(), target);
    return static_cast<int>(std::min<std::ptrdiff_t>(
        it - cdf.begin(), static_cast<std::ptrdiff_t>(cdf.size()) - 1));
}

void validate_spec(const scenario_spec& spec) {
    const auto fail = [&](const std::string& what) {
        throw std::invalid_argument{"scenario '" + spec.name + "': " + what};
    };
    if (spec.base.ports < 1) fail("need >= 1 port");
    if (spec.zipf_skew < 0) fail("negative zipf_skew");
    if (spec.region_target < 0) fail("negative region_target");
    if (spec.rebalance_every < 0) fail("negative rebalance_every");
    const int total = spec.total_operations();
    for (const auto& ph : spec.phases) {
        if (ph.operations < 0) fail("negative phase operations");
        if (ph.mean_interarrival < 0) fail("negative phase inter-arrival");
    }
    for (const auto& c : spec.crowds) {
        if (c.port < 0 || c.port >= spec.base.ports) fail("flash crowd port out of range");
        if (c.share < 0 || c.share > 1) fail("flash crowd share outside [0, 1]");
        if (c.first_op < 0 || c.last_op < c.first_op || c.first_op > total)
            fail("flash crowd window malformed");
    }
    for (const auto& ev : spec.outages) {
        if (ev.at_op < 0 || ev.at_op >= std::max(total, 1)) fail("outage at_op out of range");
        if (ev.region < 0) fail("negative outage region");
        if (ev.heal_after < -1) fail("outage heal_after < -1");
    }
}

std::string draw_counter_name(int port_index) {
    return "scenario_port_draws_" + std::to_string(port_index);
}

}  // namespace

int scenario_spec::total_operations() const {
    if (phases.empty()) return base.operations;
    int total = 0;
    for (const auto& ph : phases) total += ph.operations;
    return total;
}

scenario_stats run_scenario(name_service& ns, const scenario_spec& spec,
                            strategies::load_aware_strategy* tuner) {
    validate_spec(spec);
    auto& sim = ns.simulator();
    auto& metrics = sim.stats();

    workload_options opts = spec.base;
    opts.operations = spec.total_operations();
    const int ports = opts.ports;

    // Phase table: cumulative operation-index boundaries -> mean.
    std::vector<std::pair<int, double>> phase_ends;
    {
        int cum = 0;
        for (const auto& ph : spec.phases) {
            cum += ph.operations;
            phase_ends.emplace_back(cum, ph.mean_interarrival);
        }
    }

    const std::vector<double> cdf = zipf_cdf(ports, spec.zipf_skew);

    // Region carve, computed once over the full (pre-churn) topology.
    net::graph_partition carve;
    if (!spec.outages.empty()) {
        carve = net::partition_connected(sim.network(), spec.region_target);
        for (const auto& ev : spec.outages)
            if (ev.region >= carve.part_count())
                throw std::invalid_argument{"scenario '" + spec.name +
                                            "': outage region beyond the carve (" +
                                            std::to_string(carve.part_count()) + " regions)"};
    }

    struct pending_heal {
        sim::time_point due;
        std::vector<net::node_id> nodes;
        bool restore;
    };
    std::vector<pending_heal> heals;

    // Dynamic-counter names, built once (pick_port runs per operation).
    std::vector<std::string> draw_names;
    draw_names.reserve(static_cast<std::size_t>(ports));
    for (int p = 0; p < ports; ++p) draw_names.push_back(draw_counter_name(p));
    std::vector<std::int64_t> last_draws(static_cast<std::size_t>(ports), 0);

    scenario_stats out;
    workload_hooks hooks;

    if (!phase_ends.empty()) {
        hooks.interarrival_mean = [phase_ends](int i) {
            for (const auto& [end, mean] : phase_ends)
                if (i < end) return mean;
            return phase_ends.back().second;
        };
    }

    hooks.pick_port = [&](int i, double u) {
        int pick = -1;
        for (const auto& c : spec.crowds) {
            if (i < c.first_op || i >= c.last_op) continue;
            if (u < c.share || c.share >= 1.0) {
                pick = c.port;
            } else {
                // Re-uniformize the remaining mass onto the base popularity.
                u = (u - c.share) / (1.0 - c.share);
            }
            break;  // windows are applied first-match
        }
        if (pick < 0) pick = pick_from_cdf(cdf, u);
        metrics.add(draw_names[static_cast<std::size_t>(pick)]);
        return pick;
    };

    hooks.at_arrival = [&](int i, workload_view& v) {
        // Due heals first, so a region can crash again the tick it healed.
        for (auto it = heals.begin(); it != heals.end();) {
            if (it->due > v.sim.now()) {
                ++it;
                continue;
            }
            for (const net::node_id node : it->nodes) {
                v.recover(node);
                ++out.region_heals;
            }
            metrics.add("scenario_region_heals",
                        static_cast<std::int64_t>(it->nodes.size()));
            if (it->restore) {
                // Partition semantics: the server processes survived, so
                // their bindings come back as tracked re-posts.
                for (int p = 0; p < ports; ++p) {
                    for (const net::node_id host : v.hosts[static_cast<std::size_t>(p)]) {
                        if (std::find(it->nodes.begin(), it->nodes.end(), host) ==
                            it->nodes.end())
                            continue;
                        v.repost(p, host);
                        ++out.heal_reposts;
                        metrics.add("scenario_heal_reposts");
                    }
                }
            }
            it = heals.erase(it);
        }

        for (const auto& ev : spec.outages) {
            if (ev.at_op != i) continue;
            const auto& region = carve.parts[static_cast<std::size_t>(ev.region)];
            std::vector<net::node_id> hit;
            for (const net::node_id node : region) {
                if (v.sim.crashed(node)) continue;
                v.crash(node);
                hit.push_back(node);
            }
            out.region_crashes += static_cast<std::int64_t>(hit.size());
            metrics.add("scenario_region_crashes", static_cast<std::int64_t>(hit.size()));
            if (!ev.restore) {
                // Crash burst: the machines reboot empty; bindings hosted
                // in the region are gone for good.
                for (auto& hs : v.hosts)
                    std::erase_if(hs, [&](net::node_id h) {
                        return std::find(hit.begin(), hit.end(), h) != hit.end();
                    });
            }
            if (ev.heal_after >= 0 && !hit.empty())
                heals.push_back({v.sim.now() + ev.heal_after, std::move(hit), ev.restore});
        }

        if (tuner != nullptr && spec.rebalance_every > 0 && i > 0 &&
            i % spec.rebalance_every == 0) {
            // Feed the window from the deterministic draw counters above -
            // the decisions are a pure function of sim::metrics state.
            for (int p = 0; p < ports; ++p) {
                const std::int64_t cur = metrics.get(draw_names[static_cast<std::size_t>(p)]);
                const std::int64_t delta = cur - last_draws[static_cast<std::size_t>(p)];
                last_draws[static_cast<std::size_t>(p)] = cur;
                tuner->observe(v.ports[static_cast<std::size_t>(p)], delta);
            }
            const auto rb = tuner->rebalance();
            out.promotions += static_cast<std::int64_t>(rb.promoted.size());
            out.demotions += static_cast<std::int64_t>(rb.demoted.size());
            if (!rb.promoted.empty())
                metrics.add("scenario_promotions",
                            static_cast<std::int64_t>(rb.promoted.size()));
            if (!rb.demoted.empty())
                metrics.add("scenario_demotions",
                            static_cast<std::int64_t>(rb.demoted.size()));
            for (const core::port_id promoted : rb.promoted) {
                // Re-home: the freshly hot port's bindings must reach the
                // replica homes, so re-post them from every live host.
                for (int p = 0; p < ports; ++p) {
                    if (v.ports[static_cast<std::size_t>(p)] != promoted) continue;
                    for (const net::node_id host : v.hosts[static_cast<std::size_t>(p)]) {
                        if (v.sim.crashed(host)) continue;
                        v.repost(p, host);
                        ++out.hot_reposts;
                        metrics.add("scenario_hot_reposts");
                    }
                }
            }
        }
    };

    out.wl = run_workload(ns, opts, hooks);
    return out;
}

// --- codec -----------------------------------------------------------------

std::vector<std::uint8_t> encode_scenario_spec(const scenario_spec& spec) {
    core::byte_writer w;
    w.u32(static_cast<std::uint32_t>(spec.name.size()));
    for (const char c : spec.name) w.u8(static_cast<std::uint8_t>(c));
    w.u64(spec.base.seed);
    w.i32(spec.base.operations);
    w.f64(spec.base.mean_interarrival);
    w.i32(spec.base.ports);
    w.i32(spec.base.servers_per_port);
    w.f64(spec.base.locate_weight);
    w.f64(spec.base.register_weight);
    w.f64(spec.base.migrate_weight);
    w.f64(spec.base.crash_weight);
    w.i64(spec.base.crash_downtime);
    w.f64(spec.base.join_weight);
    w.f64(spec.base.leave_weight);
    w.f64(spec.base.rejoin_weight);
    w.i32(spec.base.join_edges);
    w.u32(static_cast<std::uint32_t>(spec.phases.size()));
    for (const auto& ph : spec.phases) {
        w.i32(ph.operations);
        w.f64(ph.mean_interarrival);
    }
    w.f64(spec.zipf_skew);
    w.u32(static_cast<std::uint32_t>(spec.crowds.size()));
    for (const auto& c : spec.crowds) {
        w.i32(c.port);
        w.f64(c.share);
        w.i32(c.first_op);
        w.i32(c.last_op);
    }
    w.u32(static_cast<std::uint32_t>(spec.outages.size()));
    for (const auto& ev : spec.outages) {
        w.i32(ev.at_op);
        w.i32(ev.region);
        w.i64(ev.heal_after);
        w.u8(ev.restore ? 1 : 0);
    }
    w.i32(spec.region_target);
    w.i32(spec.rebalance_every);
    return w.bytes();
}

bool decode_scenario_spec(const std::vector<std::uint8_t>& bytes, scenario_spec& out) {
    core::byte_reader r{bytes.data(), bytes.size()};
    scenario_spec spec;
    const std::uint32_t name_len = r.u32();
    if (name_len > 4096 || name_len > r.remaining()) return false;
    spec.name.clear();
    for (std::uint32_t i = 0; i < name_len; ++i)
        spec.name.push_back(static_cast<char>(r.u8()));
    spec.base.seed = r.u64();
    spec.base.operations = r.i32();
    spec.base.mean_interarrival = r.f64();
    spec.base.ports = r.i32();
    spec.base.servers_per_port = r.i32();
    spec.base.locate_weight = r.f64();
    spec.base.register_weight = r.f64();
    spec.base.migrate_weight = r.f64();
    spec.base.crash_weight = r.f64();
    spec.base.crash_downtime = r.i64();
    spec.base.join_weight = r.f64();
    spec.base.leave_weight = r.f64();
    spec.base.rejoin_weight = r.f64();
    spec.base.join_edges = r.i32();
    const std::uint32_t phase_count = r.u32();
    if (phase_count > 1u << 20) return false;
    for (std::uint32_t i = 0; i < phase_count && r.ok(); ++i) {
        scenario_phase ph;
        ph.operations = r.i32();
        ph.mean_interarrival = r.f64();
        spec.phases.push_back(ph);
    }
    spec.zipf_skew = r.f64();
    const std::uint32_t crowd_count = r.u32();
    if (crowd_count > 1u << 20) return false;
    for (std::uint32_t i = 0; i < crowd_count && r.ok(); ++i) {
        flash_crowd c;
        c.port = r.i32();
        c.share = r.f64();
        c.first_op = r.i32();
        c.last_op = r.i32();
        spec.crowds.push_back(c);
    }
    const std::uint32_t outage_count = r.u32();
    if (outage_count > 1u << 20) return false;
    for (std::uint32_t i = 0; i < outage_count && r.ok(); ++i) {
        region_event ev;
        ev.at_op = r.i32();
        ev.region = r.i32();
        ev.heal_after = r.i64();
        ev.restore = r.u8() != 0;
        spec.outages.push_back(ev);
    }
    spec.region_target = r.i32();
    spec.rebalance_every = r.i32();
    if (!r.exhausted()) return false;
    try {
        validate_spec(spec);
    } catch (const std::invalid_argument&) {
        return false;
    }
    out = std::move(spec);
    return true;
}

// --- named catalog ---------------------------------------------------------

std::vector<std::string> scenario_names() {
    return {"steady",          "zipf",           "flash_crowd", "diurnal",
            "regional_outage", "partition_heal", "hostile"};
}

scenario_spec named_scenario(const std::string& name, int ports, int operations,
                             std::uint64_t seed) {
    if (ports < 1) throw std::invalid_argument{"named_scenario: need >= 1 port"};
    if (operations < 1) throw std::invalid_argument{"named_scenario: need >= 1 operation"};
    scenario_spec spec;
    spec.name = name;
    spec.base.seed = seed;
    spec.base.operations = operations;
    spec.base.mean_interarrival = 1.0;
    spec.base.ports = ports;
    spec.base.servers_per_port = 1;
    // One locate-heavy mix across the whole catalog, so cells of the e22
    // matrix differ only by the declared hostility.  Failures come from the
    // region schedule, not the mix, keeping the driver's host bookkeeping
    // (and with it the staleness-served count) exact.
    spec.base.locate_weight = 0.92;
    spec.base.register_weight = 0.04;
    spec.base.migrate_weight = 0.04;
    spec.base.crash_weight = 0;
    spec.rebalance_every = std::max(8, operations / 16);
    const int n = operations;
    if (name == "steady") {
        return spec;
    }
    if (name == "zipf") {
        spec.zipf_skew = 1;
        return spec;
    }
    if (name == "flash_crowd") {
        // The coldest port of a uniform base surges to 3/4 of all traffic
        // for the middle half of the run.
        spec.crowds.push_back({ports - 1, 0.75, n / 4, 3 * n / 4});
        return spec;
    }
    if (name == "diurnal") {
        spec.zipf_skew = 1;
        spec.phases = {{n / 4, 2.0}, {n / 2, 0.4}, {n - n / 4 - n / 2, 2.0}};
        return spec;
    }
    // Heal delay in ticks, sized to the run: at mean inter-arrival 1.0 the
    // issue window spans ~`operations` ticks, so n/4 heals well inside it
    // (heals are drained at arrival points; a heal due after the last
    // arrival deterministically never fires).
    const auto heal_after = static_cast<sim::time_point>(std::max(1, n / 4));
    if (name == "regional_outage") {
        // Correlated crash bursts: two regions fail-stop (bindings lost),
        // machines reboot empty after a while.
        spec.zipf_skew = 1;
        spec.outages.push_back({n / 4, 0, heal_after, false});
        spec.outages.push_back({n / 2, 1, heal_after, false});
        return spec;
    }
    if (name == "partition_heal") {
        // Partitions that heal: the regions come back and re-post their
        // surviving bindings.
        spec.zipf_skew = 1;
        spec.outages.push_back({n / 3, 1, heal_after, true});
        spec.outages.push_back({3 * n / 5, 2, heal_after, true});
        return spec;
    }
    if (name == "hostile") {
        // Everything at once: heavy skew, a flash crowd on the hot port,
        // and a partition across the crowd window.
        spec.zipf_skew = 2;
        spec.crowds.push_back({0, 0.6, n / 3, 2 * n / 3});
        spec.outages.push_back({2 * n / 5, 0, heal_after, true});
        return spec;
    }
    throw std::invalid_argument{"named_scenario: unknown scenario '" + name + "'"};
}

// --- cross-engine differential ---------------------------------------------

namespace {

struct scenario_run {
    scenario_stats st;
    std::int64_t hops = 0;
    std::int64_t sent = 0;
    std::int64_t delivered = 0;
    std::int64_t dropped = 0;
    sim::time_point now = 0;
    std::map<std::string, std::int64_t, std::less<>> counters;
};

// Runs the spec under one engine with a fresh 64-node hierarchy and a
// load-aware(hierarchical) strategy, tuner armed.
scenario_run run_scenario_engine(const scenario_spec& spec, int workers, bool batched) {
    const std::vector<int> fanouts{4, 4, 4};
    net::graph g = net::make_hierarchical_graph(net::hierarchy{fanouts});
    sim::simulator sim{g};
    sim.set_canonical_paths(true);
    if (workers > 0) sim.set_worker_threads(workers);
    sim.set_batched_delivery(batched);
    strategies::hierarchical_strategy parent{net::hierarchy{fanouts}};
    strategies::load_aware_strategy tuned{
        parent, {.hot_threshold = 12, .cool_threshold = 3, .replicas = 3}};
    tuned.set_regions(net::partition_connected(g));
    name_service::options policy;
    policy.entry_ttl = 400;
    policy.refresh_period = 0;  // quiesce, so hop counters compare exactly
    policy.client_caching = true;
    name_service ns{sim, tuned, policy};
    scenario_run run;
    run.st = run_scenario(ns, spec, &tuned);
    run.hops = sim.stats().get(sim::counter_hops);
    run.sent = sim.stats().get(sim::counter_messages_sent);
    run.delivered = sim.stats().get(sim::counter_messages_delivered);
    run.dropped = sim.stats().get(sim::counter_messages_dropped);
    run.now = sim.now();
    // Wall-clock phase timers are measurements, not determinism; parallel
    // tick/round counts differ between the serial and parallel engines but
    // classes are compared internally, where they are part of the contract.
    run.counters = sim.stats().counters();
    std::erase_if(run.counters,
                  [](const auto& kv) { return kv.first.starts_with("phase_"); });
    return run;
}

std::string diff_scenario_runs(const scenario_run& a, const scenario_run& b) {
    std::ostringstream os;
    const auto check = [&os](const char* field, auto va, auto vb) {
        if (os.tellp() == 0 && va != vb) os << field << ": " << va << " vs " << vb;
    };
    check("hops", a.hops, b.hops);
    check("sent", a.sent, b.sent);
    check("delivered", a.delivered, b.delivered);
    check("dropped", a.dropped, b.dropped);
    check("now", a.now, b.now);
    check("promotions", a.st.promotions, b.st.promotions);
    check("demotions", a.st.demotions, b.st.demotions);
    check("hot_reposts", a.st.hot_reposts, b.st.hot_reposts);
    check("region_crashes", a.st.region_crashes, b.st.region_crashes);
    check("region_heals", a.st.region_heals, b.st.region_heals);
    check("heal_reposts", a.st.heal_reposts, b.st.heal_reposts);
    check("issued", a.st.wl.issued, b.st.wl.issued);
    check("completed", a.st.wl.completed, b.st.wl.completed);
    check("locates", a.st.wl.locates, b.st.wl.locates);
    check("locates_found", a.st.wl.locates_found, b.st.wl.locates_found);
    check("stale_served", a.st.wl.stale_served, b.st.wl.stale_served);
    check("per_op_message_passes", a.st.wl.per_op_message_passes,
          b.st.wl.per_op_message_passes);
    check("makespan", a.st.wl.makespan, b.st.wl.makespan);
    check("latency_p50", a.st.wl.latency_p50, b.st.wl.latency_p50);
    check("latency_p99", a.st.wl.latency_p99, b.st.wl.latency_p99);
    check("latency_max", a.st.wl.latency_max, b.st.wl.latency_max);
    check("hot_port", a.st.wl.hot_port, b.st.wl.hot_port);
    if (os.tellp() != 0) return os.str();
    if (a.st.wl.per_port.size() != b.st.wl.per_port.size()) return "per_port size";
    for (std::size_t p = 0; p < a.st.wl.per_port.size(); ++p) {
        const auto& pa = a.st.wl.per_port[p];
        const auto& pb = b.st.wl.per_port[p];
        if (pa.locates != pb.locates || pa.found != pb.found ||
            pa.stale_served != pb.stale_served || pa.hops != pb.hops) {
            os << "per_port[" << p << "]";
            return os.str();
        }
    }
    if (a.st.wl.results.size() != b.st.wl.results.size()) return "results count";
    for (std::size_t i = 0; i < a.st.wl.results.size(); ++i) {
        const auto& ra = a.st.wl.results[i];
        const auto& rb = b.st.wl.results[i];
        if (ra.found != rb.found || ra.where != rb.where || ra.latency != rb.latency ||
            ra.message_passes != rb.message_passes ||
            ra.issued_at != rb.issued_at || ra.completed_at != rb.completed_at) {
            os << "op " << i << ": (found " << ra.found << " where " << ra.where
               << " latency " << ra.latency << ") vs (found " << rb.found << " where "
               << rb.where << " latency " << rb.latency << ")";
            return os.str();
        }
    }
    if (a.counters != b.counters) {
        for (const auto& [name, value] : a.counters) {
            const auto it = b.counters.find(name);
            if (it == b.counters.end()) return "counter " + name + " missing";
            if (it->second != value)
                return "counter " + name + ": " + std::to_string(value) + " vs " +
                       std::to_string(it->second);
        }
        return "counter set mismatch";
    }
    return {};
}

}  // namespace

scenario_diff_report diff_scenario_engines(const std::string& name, std::uint64_t seed) {
    const scenario_spec spec = named_scenario(name, 8, 120, seed);
    scenario_diff_report report;

    // Parallel class: par1 is the reference; 2/4/8 workers must match bit
    // for bit (the acceptance contract of every driver in this repo).
    const scenario_run par1 = run_scenario_engine(spec, 1, true);
    for (const int workers : {2, 4, 8}) {
        const scenario_run other = run_scenario_engine(spec, workers, true);
        const std::string diff = diff_scenario_runs(par1, other);
        if (!diff.empty()) {
            report.divergence = "par" + std::to_string(workers) + ": " + diff;
            return report;
        }
    }

    // Serial class: batched vs hop-by-hop delivery, which pins the crash
    // devolution ordering of in-flight batched flights.
    const scenario_run serial = run_scenario_engine(spec, 0, true);
    const scenario_run nobatch = run_scenario_engine(spec, 0, false);
    {
        const std::string diff = diff_scenario_runs(serial, nobatch);
        if (!diff.empty()) {
            report.divergence = "serial-nobatch: " + diff;
            return report;
        }
    }

    report.ok = true;
    return report;
}

}  // namespace mm::runtime
