// workload.h - open-loop workload driver for the asynchronous name service.
//
// The paper's complexity measures (message passes, clogging) only become
// interesting under concurrent load: "the network is designed to support
// heavy traffic from millions of users".  This driver issues a reproducible
// open-loop stream of mixed operations - locates, registrations, migrations,
// crashes/recoveries - against one name_service, with arrivals drawn from a
// seeded exponential process.  Operations overlap freely in one simulator
// run (the begin_*/run_until_complete API); the result aggregates per-op
// latency percentiles, throughput, and the message-pass accounting check
// that per-operation tag counters sum back to the simulator's global hop
// counter.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "runtime/name_service.h"

namespace mm::runtime {

struct workload_options {
    std::uint64_t seed = 1;
    // Operations to issue after the initial registrations.
    int operations = 1000;
    // Mean ticks between arrivals (exponential inter-arrival; 0 = burst:
    // every operation issued at the same tick).
    double mean_interarrival = 1.0;
    // Distinct service ports, each pre-registered at `servers_per_port`
    // deterministic-random hosts before the clock starts.
    int ports = 16;
    int servers_per_port = 1;
    // Relative weights of the operation mix (need not sum to 1).
    double locate_weight = 0.90;
    double register_weight = 0.04;
    double migrate_weight = 0.04;
    double crash_weight = 0.02;  // crash a random non-server host; recovers
                                 // after crash_downtime ticks of sim time
    sim::time_point crash_downtime = 50;
    // Churn regime (dynamic membership).  Any weight > 0 requires a
    // simulator constructed over a mutable graph (topology_mutable()).
    // Joins attach a brand-new node to `join_edges` distinct base nodes;
    // leaves remove a previously-joined node; rejoins bring a departed
    // joiner back at fresh attach points with empty state.  Churners are
    // tracked separately from the base population, so the locate/register/
    // migrate/crash mix above always targets nodes that exist for the
    // whole run and the stream of base-node draws stays comparable across
    // churn settings.
    double join_weight = 0;
    double leave_weight = 0;
    double rejoin_weight = 0;
    int join_edges = 2;
};

// Per-port locate breakdown (index = the port's index in the workload's
// port table, i.e. "wl-<index>").  Only locate-kind operations are counted
// here; the aggregate stats below cover the whole mix.
struct workload_port_stats {
    std::int64_t locates = 0;        // completed locates of this port
    std::int64_t found = 0;          // ... that found an address
    std::int64_t stale_served = 0;   // ... whose answer was stale (below)
    std::int64_t hops = 0;           // message passes of this port's locates
};

struct workload_stats {
    std::int64_t issued = 0;
    std::int64_t completed = 0;
    std::int64_t locates = 0;
    std::int64_t locates_found = 0;
    // Found locates whose answered address is, at the end of the run,
    // crashed or no longer among the port's registered hosts as tracked by
    // the driver - the served answer pointed somewhere the service had
    // already left (cached-hint staleness, Section 2.1's price of hints).
    std::int64_t stale_served = 0;
    std::int64_t crashes = 0;
    std::int64_t joins = 0;
    std::int64_t leaves = 0;
    std::int64_t rejoins = 0;
    // Sum of per-operation tag hop counters vs. the simulator's global hop
    // counter over the run; equal when nothing else (refresh) sends.
    std::int64_t per_op_message_passes = 0;
    std::int64_t global_message_passes = 0;
    // Peak number of operations simultaneously in flight.
    int max_in_flight = 0;
    // First issue to last completion, in ticks.
    sim::time_point makespan = 0;
    double throughput = 0;  // completed operations per tick
    // Latency distribution over ALL completed operations, in ticks: found
    // locates and settled posts report answer/settle time, failed locates
    // report their full settle deadline (the time a caller actually waited
    // for the negative answer) - so crash-heavy mixes show fatter tails.
    sim::time_point latency_p50 = 0;
    sim::time_point latency_p95 = 0;
    sim::time_point latency_p99 = 0;
    sim::time_point latency_max = 0;
    // Per-operation results in issue order (locate-kind ops and post-kind
    // ops alike), for determinism checks and custom aggregation.
    std::vector<locate_result> results;
    // Per-port locate breakdown, indexed like the port table.
    std::vector<workload_port_stats> per_port;
    // The port with the most completed locates (lowest index wins ties) and
    // its share of all completed locates / of all locate message passes -
    // the skew quantities the scenario matrix (bench_e22) reports per cell.
    int hot_port = -1;
    double hot_port_locate_share = 0;
    double hot_port_hop_share = 0;
};

// Driver state exposed to hooks at each arrival.  The scenario layer
// (runtime/scenario.h) uses it to inject region-correlated crashes, heals,
// and hot-port re-posts that are tracked - issued/completed/accounted -
// exactly like mix operations.
struct workload_view {
    name_service& ns;
    sim::simulator& sim;
    const std::vector<core::port_id>& ports;        // index -> port id
    std::vector<std::vector<net::node_id>>& hosts;  // index -> registered hosts
    // Issues a tracked re-post of port index `pi`'s binding at `at` (counted
    // in issued/completed and the per-op accounting; does not touch hosts).
    const std::function<void(int, net::node_id)>& repost;
    // Crash / recover with idempotence guards (no-ops when the node is
    // already in the requested state).  Neither touches hosts: the caller
    // decides whether a crash means "server process died" (erase the host)
    // or "region partitioned away" (keep it; repost after the heal).
    const std::function<void(net::node_id)>& crash;
    const std::function<void(net::node_id)>& recover;
};

// Optional per-run hooks.  All default-empty; a default-constructed hooks
// struct leaves the driver's draw stream and behavior bit-identical to the
// hook-free overload (golden traces depend on this).
struct workload_hooks {
    // Overrides opts.mean_interarrival per operation index (0 = burst).
    std::function<double(int)> interarrival_mean;
    // Overrides the uniform port draw.  Receives the operation index and
    // exactly the one uniform01 draw the default pick would have consumed;
    // must return a port index in [0, opts.ports).
    std::function<int(int, double)> pick_port;
    // Called once per operation index after arrivals/recoveries settle and
    // before the mix dice roll - the injection point for scenario events.
    // Must not consume driver randomness.
    std::function<void(int, workload_view&)> at_arrival;
};

// Runs the workload to completion.  Deterministic: the same options against
// the same name_service/simulator state produce identical stats.
workload_stats run_workload(name_service& ns, const workload_options& opts);
workload_stats run_workload(name_service& ns, const workload_options& opts,
                            const workload_hooks& hooks);

}  // namespace mm::runtime
