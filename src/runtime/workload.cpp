#include "runtime/workload.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <utility>

#include "sim/rng.h"

namespace mm::runtime {

namespace {

// Percentile over a sorted vector (nearest-rank).
sim::time_point percentile(const std::vector<sim::time_point>& sorted, double p) {
    if (sorted.empty()) return 0;
    const auto rank = static_cast<std::size_t>(
        std::min<double>(static_cast<double>(sorted.size()) - 1.0,
                         std::ceil(p * static_cast<double>(sorted.size())) - 1.0));
    return sorted[rank];
}

}  // namespace

workload_stats run_workload(name_service& ns, const workload_options& opts) {
    return run_workload(ns, opts, workload_hooks{});
}

workload_stats run_workload(name_service& ns, const workload_options& opts,
                            const workload_hooks& hooks) {
    if (opts.operations < 0) throw std::invalid_argument{"run_workload: operations < 0"};
    if (opts.ports < 1) throw std::invalid_argument{"run_workload: need >= 1 port"};
    if (opts.mean_interarrival < 0)
        throw std::invalid_argument{"run_workload: negative inter-arrival"};

    auto& sim = ns.simulator();
    const net::node_id n = sim.network().node_count();
    sim::rng random{opts.seed};

    // Bootstrap: register every port's replicas before the clock starts;
    // track host sets locally so migrations can pick real sources.
    std::vector<core::port_id> ports(static_cast<std::size_t>(opts.ports));
    std::vector<std::vector<net::node_id>> hosts(static_cast<std::size_t>(opts.ports));
    for (int p = 0; p < opts.ports; ++p) {
        ports[static_cast<std::size_t>(p)] = core::port_of("wl-" + std::to_string(p));
        for (int r = 0; r < opts.servers_per_port; ++r) {
            const auto at = static_cast<net::node_id>(random.uniform(0, n - 1));
            ns.register_server(ports[static_cast<std::size_t>(p)], at);
            hosts[static_cast<std::size_t>(p)].push_back(at);
        }
    }

    workload_stats stats;
    stats.global_message_passes = -sim.stats().get(sim::counter_hops);

    const double churn_weight =
        opts.join_weight + opts.leave_weight + opts.rejoin_weight;
    if (churn_weight > 0) {
        if (!sim.topology_mutable())
            throw std::invalid_argument{
                "run_workload: churn weights need a simulator built over a "
                "mutable graph (simulator(net::graph&))"};
        if (opts.join_edges < 1)
            throw std::invalid_argument{"run_workload: join_edges < 1"};
    }
    const double total_weight = opts.locate_weight + opts.register_weight +
                                opts.migrate_weight + opts.crash_weight +
                                churn_weight;
    if (total_weight <= 0) throw std::invalid_argument{"run_workload: zero-weight mix"};

    // All base-population draws use the pre-churn node count `n`, so the
    // locate/register/migrate/crash mix targets the same stream of nodes
    // whatever the churn settings; joined nodes live in their own pools.
    const auto pick_live_node = [&]() -> net::node_id {
        for (int tries = 0; tries < 64; ++tries) {
            const auto v = static_cast<net::node_id>(random.uniform(0, n - 1));
            if (!sim.crashed(v)) return v;
        }
        return net::invalid_node;
    };

    std::vector<net::node_id> churners_live;  // joined, currently present
    std::vector<net::node_id> churners_gone;  // joined, then departed
    std::vector<net::node_id> attach;
    const auto pick_attach = [&]() -> bool {
        attach.clear();
        for (int tries = 0;
             tries < 64 && static_cast<int>(attach.size()) < opts.join_edges; ++tries) {
            const auto v = static_cast<net::node_id>(random.uniform(0, n - 1));
            if (!sim.crashed(v) &&
                std::find(attach.begin(), attach.end(), v) == attach.end())
                attach.push_back(v);
        }
        return static_cast<int>(attach.size()) == opts.join_edges;
    };

    std::vector<op_id> ids;
    ids.reserve(static_cast<std::size_t>(opts.operations));
    std::vector<char> is_locate;
    is_locate.reserve(static_cast<std::size_t>(opts.operations));
    std::vector<int> op_port;  // port index per tracked op (locate accounting)
    op_port.reserve(static_cast<std::size_t>(opts.operations));
    std::vector<std::pair<sim::time_point, net::node_id>> recoveries;  // sorted by time
    const sim::time_point first_issue = sim.now();
    sim::time_point arrival = sim.now();

    // Hook plumbing: reposts are tracked like mix registers, crash/recover
    // are idempotence-guarded so scenario bursts compose with the mix's own
    // crash/recovery schedule without double-transitioning a node.
    const std::function<void(int, net::node_id)> hook_repost =
        [&](int p, net::node_id at) {
            ids.push_back(ns.begin_register(ports[static_cast<std::size_t>(p)], at));
            is_locate.push_back(0);
            op_port.push_back(p);
            ++stats.issued;
        };
    const std::function<void(net::node_id)> hook_crash = [&](net::node_id v) {
        if (!sim.crashed(v)) ns.crash_node(v);
    };
    const std::function<void(net::node_id)> hook_recover = [&](net::node_id v) {
        if (sim.crashed(v)) ns.recover_node(v);
    };
    workload_view view{ns, sim, ports, hosts, hook_repost, hook_crash, hook_recover};

    for (int i = 0; i < opts.operations; ++i) {
        // Open-loop arrivals: exponential inter-arrival, issued regardless
        // of how many operations are still in flight.
        const double mean = hooks.interarrival_mean ? hooks.interarrival_mean(i)
                                                    : opts.mean_interarrival;
        if (mean < 0) throw std::invalid_argument{"run_workload: negative inter-arrival"};
        if (mean > 0) {
            const double u = random.uniform01();
            arrival += static_cast<sim::time_point>(std::llround(-mean * std::log(1.0 - u)));
        }
        if (arrival > sim.now()) sim.run_until(arrival);
        while (!recoveries.empty() && recoveries.front().first <= sim.now()) {
            if (sim.crashed(recoveries.front().second))
                ns.recover_node(recoveries.front().second);
            recoveries.erase(recoveries.begin());
        }
        if (hooks.at_arrival) hooks.at_arrival(i, view);

        const double dice = random.uniform01() * total_weight;
        std::size_t pi;
        if (hooks.pick_port) {
            const int p = hooks.pick_port(i, random.uniform01());
            if (p < 0 || p >= opts.ports)
                throw std::out_of_range{"run_workload: pick_port out of range"};
            pi = static_cast<std::size_t>(p);
        } else {
            pi = static_cast<std::size_t>(random.uniform(0, opts.ports - 1));
        }
        const core::port_id port = ports[pi];
        const double w_locate = opts.locate_weight;
        const double w_register = w_locate + opts.register_weight;
        const double w_migrate = w_register + opts.migrate_weight;
        const double w_join = w_migrate + opts.join_weight;
        const double w_leave = w_join + opts.leave_weight;
        const double w_rejoin = w_leave + opts.rejoin_weight;
        if (dice < w_locate) {
            const auto client = pick_live_node();
            if (client == net::invalid_node) continue;
            ids.push_back(ns.begin_locate(port, client));
            is_locate.push_back(1);
            op_port.push_back(static_cast<int>(pi));
            ++stats.issued;
        } else if (dice < w_register) {
            const auto at = pick_live_node();
            if (at == net::invalid_node) continue;
            ids.push_back(ns.begin_register(port, at));
            is_locate.push_back(0);
            op_port.push_back(static_cast<int>(pi));
            hosts[pi].push_back(at);
            ++stats.issued;
        } else if (dice < w_migrate) {
            if (hosts[pi].empty()) continue;
            const auto hi = static_cast<std::size_t>(
                random.uniform(0, static_cast<std::int64_t>(hosts[pi].size()) - 1));
            const net::node_id from = hosts[pi][hi];
            const auto to = pick_live_node();
            if (to == net::invalid_node || to == from || sim.crashed(from)) continue;
            ids.push_back(ns.begin_migrate(port, from, to));
            is_locate.push_back(0);
            op_port.push_back(static_cast<int>(pi));
            hosts[pi][hi] = to;
            ++stats.issued;
        } else if (dice < w_join) {
            if (!pick_attach()) continue;
            churners_live.push_back(ns.join_node(attach));
            ++stats.joins;
        } else if (dice < w_leave) {
            if (churners_live.empty()) continue;
            const auto ci = static_cast<std::size_t>(random.uniform(
                0, static_cast<std::int64_t>(churners_live.size()) - 1));
            const net::node_id v = churners_live[ci];
            churners_live.erase(churners_live.begin() +
                                static_cast<std::ptrdiff_t>(ci));
            ns.leave_node(v);
            churners_gone.push_back(v);
            ++stats.leaves;
        } else if (dice < w_rejoin) {
            if (churners_gone.empty() || !pick_attach()) continue;
            const auto ci = static_cast<std::size_t>(random.uniform(
                0, static_cast<std::int64_t>(churners_gone.size()) - 1));
            const net::node_id v = churners_gone[ci];
            churners_gone.erase(churners_gone.begin() +
                                static_cast<std::ptrdiff_t>(ci));
            ns.rejoin_node(v, attach);
            churners_live.push_back(v);
            ++stats.rejoins;
        } else {
            const auto victim = pick_live_node();
            if (victim == net::invalid_node) continue;
            ns.crash_node(victim);
            for (auto& hs : hosts) std::erase(hs, victim);
            recoveries.emplace_back(sim.now() + opts.crash_downtime, victim);
            ++stats.crashes;
        }
    }

    ns.run_until_complete(ids);
    // Let stragglers (queries/replies of already-completed operations) land
    // so the per-tag hop counters are final.  Bounded, because periodic
    // refresh timers keep the event queue non-empty forever.
    if (ns.policy().refresh_period > 0) {
        ns.run_for(4 * n + 8);
    } else {
        sim.run();
    }

    std::vector<sim::time_point> durations;
    durations.reserve(ids.size());
    std::vector<std::pair<sim::time_point, int>> flight;  // (+1 issue, -1 done)
    flight.reserve(2 * ids.size());
    stats.per_port.resize(static_cast<std::size_t>(opts.ports));
    for (std::size_t k = 0; k < ids.size(); ++k) {
        const auto result = ns.poll(ids[k]);
        if (!result) continue;  // actor crashed mid-flight and never resolved
        ++stats.completed;
        if (is_locate[k]) {
            ++stats.locates;
            if (result->found) ++stats.locates_found;
            auto& pp = stats.per_port[static_cast<std::size_t>(op_port[k])];
            ++pp.locates;
            pp.hops += result->message_passes;
            if (result->found) {
                ++pp.found;
                const auto& hs = hosts[static_cast<std::size_t>(op_port[k])];
                if (sim.crashed(result->where) ||
                    std::find(hs.begin(), hs.end(), result->where) == hs.end()) {
                    ++pp.stale_served;
                    ++stats.stale_served;
                }
            }
        }
        stats.per_op_message_passes += result->message_passes;
        stats.makespan = std::max(stats.makespan, result->completed_at - first_issue);
        durations.push_back(result->completed_at - result->issued_at);
        flight.emplace_back(result->issued_at, 1);
        flight.emplace_back(result->completed_at, -1);
        stats.results.push_back(*result);
    }
    for (const op_id id : ids) ns.forget(id);
    stats.global_message_passes += sim.stats().get(sim::counter_hops);

    std::sort(flight.begin(), flight.end(), [](const auto& a, const auto& b) {
        // Starts before ends at the same tick: same-tick overlap counts.
        return a.first != b.first ? a.first < b.first : a.second > b.second;
    });
    int in_flight = 0;
    for (const auto& [when, delta] : flight) {
        (void)when;
        in_flight += delta;
        stats.max_in_flight = std::max(stats.max_in_flight, in_flight);
    }

    std::int64_t locate_hops = 0;
    for (std::size_t p = 0; p < stats.per_port.size(); ++p) {
        locate_hops += stats.per_port[p].hops;
        if (stats.hot_port < 0 ||
            stats.per_port[p].locates >
                stats.per_port[static_cast<std::size_t>(stats.hot_port)].locates)
            stats.hot_port = static_cast<int>(p);
    }
    if (stats.hot_port >= 0 && stats.locates > 0) {
        const auto& hot = stats.per_port[static_cast<std::size_t>(stats.hot_port)];
        stats.hot_port_locate_share =
            static_cast<double>(hot.locates) / static_cast<double>(stats.locates);
        if (locate_hops > 0)
            stats.hot_port_hop_share =
                static_cast<double>(hot.hops) / static_cast<double>(locate_hops);
    }

    std::sort(durations.begin(), durations.end());
    stats.latency_p50 = percentile(durations, 0.50);
    stats.latency_p95 = percentile(durations, 0.95);
    stats.latency_p99 = percentile(durations, 0.99);
    stats.latency_max = durations.empty() ? 0 : durations.back();
    stats.throughput = stats.makespan > 0
                           ? static_cast<double>(stats.completed) /
                                 static_cast<double>(stats.makespan)
                           : static_cast<double>(stats.completed);
    return stats;
}

}  // namespace mm::runtime
