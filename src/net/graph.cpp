#include "net/graph.h"

#include <algorithm>
#include <stdexcept>

namespace mm::net {

graph::graph(node_id node_count) {
    if (node_count < 0) throw std::invalid_argument{"graph: negative node count"};
    adjacency_.resize(static_cast<std::size_t>(node_count));
    live_count_ = node_count;
}

void graph::require_valid(node_id v, const char* what) const {
    if (!valid_node(v)) {
        throw std::out_of_range{std::string{"graph: invalid node in "} + what + ": " +
                                std::to_string(v)};
    }
}

void graph::require_present(node_id v, const char* what) const {
    require_valid(v, what);
    if (!present(v)) {
        throw std::invalid_argument{std::string{"graph: removed node in "} + what + ": " +
                                    std::to_string(v)};
    }
}

void graph::record(change_kind kind, node_id a, node_id b) {
    ++generation_;
    if (log_.size() == log_capacity) log_.pop_front();
    log_.push_back(change{kind, a, b});
}

void graph::add_edge(node_id a, node_id b) {
    require_present(a, "add_edge");
    require_present(b, "add_edge");
    if (a == b) throw std::invalid_argument{"graph: self-loop rejected"};
    if (has_edge(a, b)) throw std::invalid_argument{"graph: parallel edge rejected"};
    adjacency_[static_cast<std::size_t>(a)].push_back(b);
    adjacency_[static_cast<std::size_t>(b)].push_back(a);
    ++edge_count_;
    finalized_ = false;
    record(change_kind::edge_added, a, b);
}

void graph::remove_edge(node_id a, node_id b) {
    require_valid(a, "remove_edge");
    require_valid(b, "remove_edge");
    auto& adj_a = adjacency_[static_cast<std::size_t>(a)];
    auto& adj_b = adjacency_[static_cast<std::size_t>(b)];
    const auto it_a = std::find(adj_a.begin(), adj_a.end(), b);
    const auto it_b = std::find(adj_b.begin(), adj_b.end(), a);
    if (it_a == adj_a.end() || it_b == adj_b.end())
        throw std::invalid_argument{"graph: removing absent edge"};
    adj_a.erase(it_a);
    adj_b.erase(it_b);
    --edge_count_;
    record(change_kind::edge_removed, a, b);
}

node_id graph::add_node() {
    const node_id v = node_count();
    adjacency_.emplace_back();
    if (!present_.empty()) present_.push_back(1);
    ++live_count_;
    record(change_kind::node_added, v, invalid_node);
    return v;
}

void graph::add_node(node_id v) {
    require_valid(v, "add_node");
    if (present(v)) throw std::invalid_argument{"graph: add_node on present node"};
    present_[static_cast<std::size_t>(v)] = 1;
    ++live_count_;
    record(change_kind::node_added, v, invalid_node);
}

void graph::remove_node(node_id v) {
    require_present(v, "remove_node");
    // Detach incident edges first so the change log replays cleanly.
    while (!adjacency_[static_cast<std::size_t>(v)].empty())
        remove_edge(v, adjacency_[static_cast<std::size_t>(v)].back());
    if (present_.empty()) present_.assign(adjacency_.size(), 1);
    present_[static_cast<std::size_t>(v)] = 0;
    --live_count_;
    record(change_kind::node_removed, v, invalid_node);
}

bool graph::has_edge(node_id a, node_id b) const {
    require_valid(a, "has_edge");
    require_valid(b, "has_edge");
    const auto& adj = adjacency_[static_cast<std::size_t>(a)];
    return std::find(adj.begin(), adj.end(), b) != adj.end();
}

std::span<const node_id> graph::neighbors(node_id v) const {
    require_valid(v, "neighbors");
    const_cast<graph*>(this)->finalize();
    return adjacency_[static_cast<std::size_t>(v)];
}

int graph::degree(node_id v) const {
    require_valid(v, "degree");
    return static_cast<int>(adjacency_[static_cast<std::size_t>(v)].size());
}

int graph::max_degree() const {
    int best = 0;
    for (const auto& adj : adjacency_) best = std::max(best, static_cast<int>(adj.size()));
    return best;
}

int graph::min_degree() const {
    int best = -1;
    for (node_id v = 0; v < node_count(); ++v) {
        if (!present(v)) continue;
        const int d = static_cast<int>(adjacency_[static_cast<std::size_t>(v)].size());
        if (best < 0 || d < best) best = d;
    }
    return best < 0 ? 0 : best;
}

bool graph::connected() const {
    if (live_count_ == 0) return false;
    const node_id n = node_count();
    node_id root = 0;
    while (!present(root)) ++root;
    std::vector<char> seen(static_cast<std::size_t>(n), 0);
    std::vector<node_id> stack{root};
    seen[static_cast<std::size_t>(root)] = 1;
    node_id reached = 1;
    while (!stack.empty()) {
        const node_id v = stack.back();
        stack.pop_back();
        for (node_id w : adjacency_[static_cast<std::size_t>(v)]) {
            if (!seen[static_cast<std::size_t>(w)]) {
                seen[static_cast<std::size_t>(w)] = 1;
                ++reached;
                stack.push_back(w);
            }
        }
    }
    return reached == live_count_;
}

void graph::finalize() {
    if (finalized_) return;
    for (auto& adj : adjacency_) std::sort(adj.begin(), adj.end());
    finalized_ = true;
}

bool graph::changes_since(std::int64_t gen, std::vector<change>& out) const {
    out.clear();
    if (gen == generation_) return true;
    if (gen > generation_ || generation_ - gen > static_cast<std::int64_t>(log_.size()))
        return false;
    const auto count = static_cast<std::size_t>(generation_ - gen);
    out.assign(log_.end() - static_cast<std::ptrdiff_t>(count), log_.end());
    return true;
}

std::string graph::summary() const {
    return "graph(n=" + std::to_string(node_count()) + ", m=" + std::to_string(edge_count_) + ")";
}

std::string graph::to_dot() const {
    std::string out = "graph g {\n";
    for (node_id v = 0; v < node_count(); ++v) {
        if (!present(v)) continue;
        if (adjacency_[static_cast<std::size_t>(v)].empty())
            out += "  " + std::to_string(v) + ";\n";
        for (node_id w : adjacency_[static_cast<std::size_t>(v)])
            if (w > v) out += "  " + std::to_string(v) + " -- " + std::to_string(w) + ";\n";
    }
    out += "}\n";
    return out;
}

}  // namespace mm::net
