// hierarchy.h - hierarchical (gateway) networks of Section 3.5.
//
// "Assume that a level i network connects n_i level i-1 networks through n_i
// gateways, for each 1 < i <= k (or basic nodes, at the lowest level 0 for
// i = 1)."  We model the hierarchy as a uniform tree of clusters: the root
// (level k) cluster contains fanout[k-1] level-(k-1) clusters, down to
// level-1 clusters of fanout[0] basic nodes.  The gateway of a cluster is
// its lowest-numbered basic node, so every gateway is a real network node
// and all strategy sets are sets of basic nodes.
#pragma once

#include <vector>

#include "net/graph.h"

namespace mm::net {

class hierarchy {
public:
    // fanouts[i] = number of level-(i) clusters (or basic nodes for i == 0)
    // inside each level-(i+1) cluster.  levels() == fanouts.size().
    explicit hierarchy(std::vector<int> fanouts);

    [[nodiscard]] int levels() const noexcept { return static_cast<int>(fanouts_.size()); }
    [[nodiscard]] node_id node_count() const noexcept { return total_; }
    [[nodiscard]] int fanout(int level) const;  // level in [1, levels()]

    // Number of basic nodes inside one level-`level` cluster.
    [[nodiscard]] node_id cluster_size(int level) const;

    // Id of the level-`level` cluster containing v (0-based among clusters
    // of that level).  cluster_of(levels(), v) == 0 for all v.
    [[nodiscard]] int cluster_of(int level, node_id v) const;

    // Index (in [0, fanout(level))) of v's level-(level-1) sub-cluster
    // within its level-`level` cluster.
    [[nodiscard]] int child_index(int level, node_id v) const;

    // Gateway node (lowest basic node) of child `child` of the given
    // level-`level` cluster.
    [[nodiscard]] node_id gateway(int level, int cluster, int child) const;

    // All fanout(level) gateways of the given cluster, ascending.
    [[nodiscard]] std::vector<node_id> gateways(int level, int cluster) const;

private:
    std::vector<int> fanouts_;
    std::vector<node_id> size_at_level_;  // size_at_level_[i] = nodes per level-i cluster
    node_id total_ = 0;
};

// Concrete routable network for a hierarchy: within every cluster, the
// gateways of its children form a complete subgraph.  The result is
// connected because a cluster's gateway doubles as its first child's
// gateway, recursively down to a basic node.
[[nodiscard]] graph make_hierarchical_graph(const hierarchy& h);

}  // namespace mm::net
