// graph.h - undirected communication graph G = (U, E).
//
// The paper models a point-to-point (store-and-forward) network as an
// undirected graph whose nodes are processors and whose edges are
// bidirectional, non-interfering communication channels.  This class is the
// substrate every topology, routing table and strategy in this library is
// built on.
//
// Membership is dynamic: nodes can join (add_node), leave (remove_node) and
// rejoin (add_node(v) on a previously removed id).  Node ids are stable for
// the lifetime of the graph -- a removed node keeps its id (absent, degree 0)
// so that routing tables, simulators and services indexed by node_id never
// need re-numbering.  Every structural change bumps a generation counter and
// is appended to a bounded change log, which lets dependents (routing tables,
// shard maps) repair themselves incrementally instead of rebuilding.
#pragma once

#include <cstdint>
#include <deque>
#include <span>
#include <string>
#include <vector>

namespace mm::net {

// Index of a node in a graph; nodes of an n-node graph are 0..n-1.
using node_id = std::int32_t;

inline constexpr node_id invalid_node = -1;

// One structural mutation, as replayed by incremental-repair consumers.
// Node events carry the node in `a` (`b` is invalid_node); edge events carry
// both endpoints.  remove_node emits edge_removed for every incident edge
// *before* its node_removed record, so replaying the log edge-by-edge is
// always consistent.
enum class change_kind : std::uint8_t { node_added, node_removed, edge_added, edge_removed };

struct change {
    change_kind kind;
    node_id a;
    node_id b;
};

// An undirected simple graph over a stable id space with dynamic membership.
//
// Edges may be added after construction; parallel edges and self-loops are
// rejected.  Adjacency lists are kept sorted on demand (finalize()) so that
// neighbor iteration is deterministic, which all simulations here rely on
// for reproducibility.
class graph {
public:
    graph() = default;
    explicit graph(node_id node_count);

    // Adds the undirected edge {a, b}.  Precondition: a != b, both present,
    // and the edge is not already present (checked; throws std::invalid_argument).
    void add_edge(node_id a, node_id b);

    // Removes the undirected edge {a, b}; throws std::invalid_argument if
    // absent.  Used by degree-preserving rewiring.
    void remove_edge(node_id a, node_id b);

    // True if {a, b} is an edge.
    [[nodiscard]] bool has_edge(node_id a, node_id b) const;

    // Appends a fresh node (present, no edges) and returns its id.
    node_id add_node();

    // Restores a previously removed node id (rejoin).  Throws
    // std::invalid_argument if v is already present.
    void add_node(node_id v);

    // Removes a present node: detaches every incident edge (each emitted as
    // an edge_removed change) and marks the id absent.  The id stays valid
    // and can be restored later with add_node(v).
    void remove_node(node_id v);

    // True iff v is a valid id that is currently a member of the network.
    [[nodiscard]] bool present(node_id v) const noexcept {
        return valid_node(v) && (present_.empty() || present_[static_cast<std::size_t>(v)]);
    }

    // Number of present nodes (node_count() minus removed ids).
    [[nodiscard]] node_id live_node_count() const noexcept { return live_count_; }

    // Monotone structure-generation counter: bumped once per change record.
    [[nodiscard]] std::int64_t generation() const noexcept { return generation_; }

    // Copies every change after `gen` into `out` (oldest first) and returns
    // true, or returns false when `gen` is older than the bounded log window
    // -- the caller must then fall back to a full rebuild.
    [[nodiscard]] bool changes_since(std::int64_t gen, std::vector<change>& out) const;

    [[nodiscard]] node_id node_count() const noexcept { return static_cast<node_id>(adjacency_.size()); }
    [[nodiscard]] std::int64_t edge_count() const noexcept { return edge_count_; }

    [[nodiscard]] std::span<const node_id> neighbors(node_id v) const;
    [[nodiscard]] int degree(node_id v) const;
    [[nodiscard]] int max_degree() const;
    [[nodiscard]] int min_degree() const;

    // True iff every present node is reachable from the first present node
    // (and at least one node is present).
    [[nodiscard]] bool connected() const;

    // Sorts all adjacency lists; idempotent.  Called automatically by
    // accessors that need determinism, cheap to call again.
    void finalize();

    [[nodiscard]] bool valid_node(node_id v) const noexcept {
        return v >= 0 && v < node_count();
    }

    // Human-readable one-line summary, e.g. "graph(n=9, m=12)".
    [[nodiscard]] std::string summary() const;

    // Graphviz DOT rendering ("graph g { ... }") for visual inspection.
    [[nodiscard]] std::string to_dot() const;

private:
    std::vector<std::vector<node_id>> adjacency_;
    // Empty until the first remove_node: the common fully-present case pays
    // no per-node flag. Once materialised, present_[v] == 1 iff v is a member.
    std::vector<char> present_;
    std::int64_t edge_count_ = 0;
    node_id live_count_ = 0;
    std::int64_t generation_ = 0;
    std::deque<change> log_;
    bool finalized_ = true;  // an edgeless graph is trivially sorted

    static constexpr std::size_t log_capacity = 4096;

    void record(change_kind kind, node_id a, node_id b);
    void require_valid(node_id v, const char* what) const;
    void require_present(node_id v, const char* what) const;
};

}  // namespace mm::net
