// graph.h - undirected communication graph G = (U, E).
//
// The paper models a point-to-point (store-and-forward) network as an
// undirected graph whose nodes are processors and whose edges are
// bidirectional, non-interfering communication channels.  This class is the
// substrate every topology, routing table and strategy in this library is
// built on.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace mm::net {

// Index of a node in a graph; nodes of an n-node graph are 0..n-1.
using node_id = std::int32_t;

inline constexpr node_id invalid_node = -1;

// An undirected simple graph with a fixed node count.
//
// Edges may be added after construction; parallel edges and self-loops are
// rejected.  Adjacency lists are kept sorted on demand (finalize()) so that
// neighbor iteration is deterministic, which all simulations here rely on
// for reproducibility.
class graph {
public:
    graph() = default;
    explicit graph(node_id node_count);

    // Adds the undirected edge {a, b}.  Precondition: a != b, both valid,
    // and the edge is not already present (checked; throws std::invalid_argument).
    void add_edge(node_id a, node_id b);

    // Removes the undirected edge {a, b}; throws std::invalid_argument if
    // absent.  Used by degree-preserving rewiring.
    void remove_edge(node_id a, node_id b);

    // True if {a, b} is an edge.
    [[nodiscard]] bool has_edge(node_id a, node_id b) const;

    [[nodiscard]] node_id node_count() const noexcept { return static_cast<node_id>(adjacency_.size()); }
    [[nodiscard]] std::int64_t edge_count() const noexcept { return edge_count_; }

    [[nodiscard]] std::span<const node_id> neighbors(node_id v) const;
    [[nodiscard]] int degree(node_id v) const;
    [[nodiscard]] int max_degree() const;
    [[nodiscard]] int min_degree() const;

    // True iff every node is reachable from node 0 (and the graph is nonempty).
    [[nodiscard]] bool connected() const;

    // Sorts all adjacency lists; idempotent.  Called automatically by
    // accessors that need determinism, cheap to call again.
    void finalize();

    [[nodiscard]] bool valid_node(node_id v) const noexcept {
        return v >= 0 && v < node_count();
    }

    // Human-readable one-line summary, e.g. "graph(n=9, m=12)".
    [[nodiscard]] std::string summary() const;

    // Graphviz DOT rendering ("graph g { ... }") for visual inspection.
    [[nodiscard]] std::string to_dot() const;

private:
    std::vector<std::vector<node_id>> adjacency_;
    std::int64_t edge_count_ = 0;
    bool finalized_ = true;  // an edgeless graph is trivially sorted

    void require_valid(node_id v, const char* what) const;
};

}  // namespace mm::net
