// partition.h - dividing a connected graph into connected parts of ~sqrt(n).
//
// Section 3 of the paper cites Erdos, Gerencser and Mate [4] for dividing
// every connected graph into O(sqrt(n)) disjoint connected subgraphs of
// ~sqrt(n) nodes each, numbers the nodes of each subgraph 1..sqrt(n) "(if
// necessary, divide the excess numbers over the nodes)", and match-makes by
// "server posts at every node carrying its own label, client broadcasts in
// its own subgraph".
//
// We implement a spanning-tree carve with an explicit size cap: every part
// is connected and has at most 2*target_size nodes (high-degree hubs are
// cut early, shedding their remaining child subtrees as separate parts).
// Parts smaller than the label alphabet cover the missing labels by cyclic
// wrap-around - exactly the paper's "divide the excess numbers over the
// nodes" - so the client's own part always contains a covering node for
// every label, at the price of bigger caches on small parts.
#pragma once

#include <vector>

#include "net/graph.h"

namespace mm::net {

struct graph_partition {
    // part_of[v] = index of the part containing v.
    std::vector<int> part_of;
    // parts[p] = sorted nodes of part p; every part is connected and has at
    // most 2 * target size nodes.
    std::vector<std::vector<node_id>> parts;
    // label_of[v] = v's rank within its part, the node's primary label.
    std::vector<int> label_of;
    // Size of the label alphabet (= the largest part's size).
    int label_count = 0;

    [[nodiscard]] int part_count() const noexcept { return static_cast<int>(parts.size()); }

    // The node of part p that covers `label`: the node whose rank is
    // label mod |part|.  Every part covers every label.
    [[nodiscard]] node_id covering_node(int part, int label) const;

    // One covering node per part for the given label (the server's post
    // set in the generic scheme), sorted.
    [[nodiscard]] std::vector<node_id> nodes_with_label(int label) const;

    // Number of labels a node covers (> 1 only in parts smaller than the
    // alphabet - the cache-size price of "dividing the excess numbers").
    [[nodiscard]] int labels_covered_by(node_id v) const;
};

// Partitions a connected graph into connected parts of at most
// 2*target_size nodes (default target: ceil(sqrt(n))) and assigns labels as
// described above.  Throws std::invalid_argument if g is not connected.
[[nodiscard]] graph_partition partition_connected(const graph& g, int target_size = 0);

}  // namespace mm::net
