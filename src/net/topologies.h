// topologies.h - constructors for every network topology used in the paper.
//
// Section 3 of the paper applies match-making to: Manhattan (rectangular
// grid) networks and their cylinder/torus wrap-arounds, d-dimensional
// meshes, binary d-cubes, cube-connected cycles, projective-plane networks,
// hierarchical (gateway) networks, and UUCP-like trees.  Complete graphs
// back the topology-independent lower bounds of Section 2, and rings appear
// in the Omega(n) remark of Section 2.3.5.
#pragma once

#include <cstdint>
#include <vector>

#include "net/graph.h"

namespace mm::net {

// --- Elementary topologies -------------------------------------------------

// Complete graph K_n: every message is deliverable in one hop.  This is the
// model under which the paper's lower bounds are stated.
[[nodiscard]] graph make_complete(node_id n);

// Cycle 0-1-...-(n-1)-0.  Requires n >= 3.
[[nodiscard]] graph make_ring(node_id n);

// Path 0-1-...-(n-1).
[[nodiscard]] graph make_path(node_id n);

// Star with node 0 in the center.  Requires n >= 1.
[[nodiscard]] graph make_star(node_id n);

// --- Grids and meshes (Section 3.1) ----------------------------------------

enum class wrap_mode {
    none,      // plain p x q grid
    cylinder,  // rows wrap (torus in one dimension)
    torus      // rows and columns wrap; the Stony Brook network shape
};

// p rows x q columns Manhattan network.  Node (r, c) has index r*q + c.
[[nodiscard]] graph make_grid(node_id rows, node_id cols, wrap_mode wrap = wrap_mode::none);

// Shape of a d-dimensional mesh; converts between linear node indices and
// coordinate vectors.  Row-major: the last dimension varies fastest.
class mesh_shape {
public:
    explicit mesh_shape(std::vector<node_id> dims);

    [[nodiscard]] node_id node_count() const noexcept { return total_; }
    [[nodiscard]] int dimensions() const noexcept { return static_cast<int>(dims_.size()); }
    [[nodiscard]] node_id extent(int dim) const { return dims_.at(static_cast<std::size_t>(dim)); }

    [[nodiscard]] std::vector<node_id> coords(node_id index) const;
    [[nodiscard]] node_id index(const std::vector<node_id>& coords) const;

private:
    std::vector<node_id> dims_;
    node_id total_ = 0;
};

// d-dimensional mesh (or torus) with the given extents.
[[nodiscard]] graph make_mesh(const mesh_shape& shape, bool torus = false);

// --- Cubes (Sections 2.3.1 example 6, 3.2, 3.3) -----------------------------

// Binary d-cube: 2^d nodes, edges between addresses differing in one bit.
[[nodiscard]] graph make_hypercube(int d);

// Cube-connected cycles CCC(d): each corner of the d-cube is replaced by a
// d-cycle; node (p, x) = cycle position p in 0..d-1 at corner x.  Index is
// x*d + p.  n = d * 2^d, every node has degree 3 (degree 2 for d < 3).
[[nodiscard]] graph make_ccc(int d);

// Index helpers for CCC nodes.
[[nodiscard]] node_id ccc_index(int d, int position, std::uint32_t corner);
[[nodiscard]] int ccc_position(int d, node_id v);
[[nodiscard]] std::uint32_t ccc_corner(int d, node_id v);

// --- Trees (Sections 2.3.1 example 5, 3.6) ----------------------------------

// Balanced tree where every internal node has `branching` children and the
// leaves are `depth` edges from the root.  Node 0 is the root; children are
// laid out breadth-first.
[[nodiscard]] graph make_balanced_tree(int branching, int depth);

// Parent array representation: parent[0] == invalid_node marks the root.
[[nodiscard]] graph make_tree(const std::vector<node_id>& parent);

// Returns parents of a BFS spanning tree of g rooted at `root`
// (parent[root] == invalid_node).  Requires g connected.
[[nodiscard]] std::vector<node_id> spanning_tree_parents(const graph& g, node_id root);

// Depth of every node below `root` in the tree given by the parent array.
[[nodiscard]] std::vector<int> tree_depths(const std::vector<node_id>& parent);

}  // namespace mm::net
