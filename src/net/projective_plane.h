// projective_plane.h - the finite projective plane PG(2, q).
//
// Section 3.4: "The projective plane PG(2,k) has n = k^2 + k + 1 points and
// equally many lines.  Each line consists of k+1 points and k+1 lines pass
// through each point.  Each pair of lines has exactly one point in common."
// A server posts along one line through its node, a client queries along one
// line through its node, and the unique common point is the rendezvous node.
//
// Points and lines are the one- and two-dimensional subspaces of GF(q)^3,
// represented by normalized homogeneous triples; point (x,y,z) lies on line
// [a,b,c] iff ax + by + cz = 0 in GF(q).
#pragma once

#include <array>
#include <span>
#include <vector>

#include "net/gf.h"
#include "net/graph.h"

namespace mm::net {

class projective_plane {
public:
    // Builds PG(2, q); q must be a prime power (propagates finite_field's
    // validation).
    explicit projective_plane(int q);

    [[nodiscard]] int order() const noexcept { return q_; }
    // n = q^2 + q + 1.
    [[nodiscard]] int point_count() const noexcept { return n_; }
    [[nodiscard]] int line_count() const noexcept { return n_; }

    [[nodiscard]] std::span<const node_id> points_on_line(int line) const;
    [[nodiscard]] std::span<const int> lines_through_point(node_id point) const;
    [[nodiscard]] bool incident(node_id point, int line) const;

    // The unique point shared by two distinct lines.
    [[nodiscard]] node_id common_point(int line_a, int line_b) const;

    // Normalized homogeneous coordinates of a point (first nonzero = 1).
    [[nodiscard]] std::array<int, 3> point_coords(node_id point) const;
    [[nodiscard]] std::array<int, 3> line_coords(int line) const;

private:
    int q_;
    int n_;
    finite_field field_;
    std::vector<std::array<int, 3>> triples_;          // shared by points and lines
    std::vector<std::vector<node_id>> line_points_;    // line -> sorted points
    std::vector<std::vector<int>> point_lines_;        // point -> sorted lines
};

}  // namespace mm::net
