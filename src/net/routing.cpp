#include "net/routing.h"

#include <queue>
#include <stdexcept>

namespace mm::net {

routing_table::routing_table(const graph& g) : graph_{&g} {
    rows_.resize(static_cast<std::size_t>(g.node_count()));
}

const routing_table::row& routing_table::row_for(node_id destination) const {
    if (!graph_->valid_node(destination)) throw std::out_of_range{"routing_table: bad node"};
    auto& slot = rows_[static_cast<std::size_t>(destination)];
    if (!slot) {
        auto r = std::make_unique<row>();
        const auto n = static_cast<std::size_t>(graph_->node_count());
        r->dist.assign(n, -1);
        r->toward.assign(n, invalid_node);
        std::queue<node_id> frontier;
        r->dist[static_cast<std::size_t>(destination)] = 0;
        frontier.push(destination);
        while (!frontier.empty()) {
            const node_id v = frontier.front();
            frontier.pop();
            for (node_id w : graph_->neighbors(v)) {
                if (r->dist[static_cast<std::size_t>(w)] < 0) {
                    r->dist[static_cast<std::size_t>(w)] = r->dist[static_cast<std::size_t>(v)] + 1;
                    r->toward[static_cast<std::size_t>(w)] = v;
                    frontier.push(w);
                }
            }
        }
        slot = std::move(r);
    }
    return *slot;
}

int routing_table::distance(node_id from, node_id to) const {
    if (!graph_->valid_node(from)) throw std::out_of_range{"routing_table: bad node"};
    const int d = row_for(to).dist[static_cast<std::size_t>(from)];
    if (d < 0) throw std::invalid_argument{"routing_table: nodes not connected"};
    return d;
}

node_id routing_table::next_hop(node_id from, node_id to) const {
    if (from == to) throw std::invalid_argument{"routing_table: next_hop of a node to itself"};
    if (!graph_->valid_node(from)) throw std::out_of_range{"routing_table: bad node"};
    const node_id hop = row_for(to).toward[static_cast<std::size_t>(from)];
    if (hop == invalid_node) throw std::invalid_argument{"routing_table: nodes not connected"};
    return hop;
}

std::vector<node_id> routing_table::path(node_id from, node_id to) const {
    std::vector<node_id> p{from};
    while (from != to) {
        from = next_hop(from, to);
        p.push_back(from);
    }
    return p;
}

std::int64_t routing_table::multicast_cost(node_id source,
                                           std::span<const node_id> targets) const {
    const auto& r = row_for(source);
    std::vector<char> reached(static_cast<std::size_t>(graph_->node_count()), 0);
    reached[static_cast<std::size_t>(source)] = 1;
    std::int64_t edges = 0;
    for (node_id t : targets) {
        if (!graph_->valid_node(t)) throw std::out_of_range{"multicast_cost: bad target"};
        node_id v = t;
        // Walk toward the source until we merge with an already-counted path.
        while (!reached[static_cast<std::size_t>(v)]) {
            reached[static_cast<std::size_t>(v)] = 1;
            ++edges;
            v = r.toward[static_cast<std::size_t>(v)];
            if (v == invalid_node) throw std::invalid_argument{"multicast_cost: not connected"};
        }
    }
    return edges;
}

std::int64_t routing_table::unicast_cost(node_id source,
                                         std::span<const node_id> targets) const {
    std::int64_t total = 0;
    for (node_id t : targets) total += distance(source, t);
    return total;
}

}  // namespace mm::net
