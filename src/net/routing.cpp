#include "net/routing.h"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace mm::net {

namespace {

// Default row-cache budget: ~256 MiB of rows at 8 bytes per entry.
constexpr std::size_t default_row_limit(node_id n) {
    if (n <= 0) return 8;
    const std::size_t rows = (std::size_t{1} << 25) / static_cast<std::size_t>(n);
    return rows < 8 ? 8 : rows;
}

}  // namespace

routing_table::routing_table(const graph& g)
    : graph_{&g}, limit_{default_row_limit(g.node_count())}, synced_gen_{g.generation()} {
    rows_.resize(static_cast<std::size_t>(g.node_count()));
}

void routing_table::drop_row(node_id root) const {
    auto& slot = rows_[static_cast<std::size_t>(root)];
    if (!slot) return;
    lru_.erase(slot->lru_pos);
    slot.reset();
    ++row_invalidations_;
}

void routing_table::apply_change(const change& c) const {
    const auto idx = [](node_id v) { return static_cast<std::size_t>(v); };
    switch (c.kind) {
        case change_kind::node_added: {
            // Fresh id: grow the slot array and every resident row.  The new
            // node has no edges yet, so "unreachable" is exactly what a
            // fresh BFS would record for it; a restored id already carries
            // unreachable entries (its incident edges were removed first).
            const auto n = static_cast<std::size_t>(graph_->node_count());
            if (rows_.size() < n) rows_.resize(n);
            for (const node_id root : lru_) {
                auto& r = *rows_[idx(root)];
                r.dist.resize(n, -1);
                r.toward.resize(n, invalid_node);
            }
            return;
        }
        case change_kind::node_removed:
            // remove_node detaches edges first; those edge_removed records
            // already dropped every row that could reach (or was rooted at)
            // the node.  Nothing left to repair.
            return;
        case change_kind::edge_added: {
            for (auto it = lru_.begin(); it != lru_.end();) {
                const node_id root = *it;
                ++it;  // advance before a potential drop invalidates *it
                auto& r = *rows_[idx(root)];
                const int da = r.dist[idx(c.a)];
                const int db = r.dist[idx(c.b)];
                if (da >= 0 && db >= 0) {
                    // Same-level edges change no distance and no parent; any
                    // level difference can shift BFS tie-breaks, so only the
                    // da == db case provably equals a fresh rebuild.
                    if (da != db) drop_row(root);
                } else if (da >= 0 || db >= 0) {
                    // One endpoint newly reachable.  A pendant (degree-1)
                    // endpoint is a leaf in every BFS tree of the final
                    // graph: patch it in place of a rebuild.
                    const node_id reach = da >= 0 ? c.a : c.b;
                    const node_id fresh = da >= 0 ? c.b : c.a;
                    if (graph_->degree(fresh) == 1 && graph_->has_edge(reach, fresh)) {
                        r.dist[idx(fresh)] = r.dist[idx(reach)] + 1;
                        r.toward[idx(fresh)] = reach;
                    } else {
                        drop_row(root);
                    }
                }
                // Neither endpoint reachable: the row cannot see the edge.
            }
            return;
        }
        case change_kind::edge_removed: {
            for (auto it = lru_.begin(); it != lru_.end();) {
                const node_id root = *it;
                ++it;
                auto& r = *rows_[idx(root)];
                // Only a tree edge carries routes; removing a non-tree edge
                // changes neither distances nor BFS parent choices.
                if (r.toward[idx(c.a)] == c.b || r.toward[idx(c.b)] == c.a) drop_row(root);
            }
            return;
        }
    }
}

void routing_table::sync() const {
    const std::int64_t gen = graph_->generation();
    if (gen == synced_gen_) return;
    if (graph_->changes_since(synced_gen_, delta_)) {
        for (const change& c : delta_) apply_change(c);
    } else {
        // Change-log window exceeded: full reset.
        row_invalidations_ += static_cast<std::int64_t>(lru_.size());
        lru_.clear();
        rows_.clear();
        rows_.resize(static_cast<std::size_t>(graph_->node_count()));
    }
    synced_gen_ = gen;
}

void routing_table::set_row_cache_limit(std::size_t limit) {
    limit_ = limit;
    if (limit_ == 0) return;
    while (lru_.size() > limit_) {
        rows_[static_cast<std::size_t>(lru_.back())].reset();
        lru_.pop_back();
    }
}

const routing_table::row* routing_table::resident_row(node_id root) const noexcept {
    return rows_[static_cast<std::size_t>(root)].get();
}

void routing_table::touch(row& r) const {
    if (r.lru_pos != lru_.begin()) lru_.splice(lru_.begin(), lru_, r.lru_pos);
}

const routing_table::row& routing_table::row_for(node_id root) const {
    if (!graph_->valid_node(root)) throw std::out_of_range{"routing_table: bad node"};
    auto& slot = rows_[static_cast<std::size_t>(root)];
    if (!slot) {
        auto r = std::make_unique<row>();
        const auto n = static_cast<std::size_t>(graph_->node_count());
        r->dist.assign(n, -1);
        r->toward.assign(n, invalid_node);
        std::queue<node_id> frontier;
        r->dist[static_cast<std::size_t>(root)] = 0;
        frontier.push(root);
        while (!frontier.empty()) {
            const node_id v = frontier.front();
            frontier.pop();
            for (node_id w : graph_->neighbors(v)) {
                if (r->dist[static_cast<std::size_t>(w)] < 0) {
                    r->dist[static_cast<std::size_t>(w)] = r->dist[static_cast<std::size_t>(v)] + 1;
                    r->toward[static_cast<std::size_t>(w)] = v;
                    frontier.push(w);
                }
            }
        }
        ++row_builds_;
        lru_.push_front(root);
        r->lru_pos = lru_.begin();
        slot = std::move(r);
        // Evict the least recently used row over the cap - but never the one
        // just built.
        if (limit_ != 0 && lru_.size() > limit_) {
            rows_[static_cast<std::size_t>(lru_.back())].reset();
            lru_.pop_back();
        }
    } else {
        touch(*slot);
    }
    return *slot;
}

int routing_table::bidirectional_distance(node_id from, node_id to) const {
    if (from == to) return 0;
    const auto n = static_cast<std::size_t>(graph_->node_count());
    for (int side = 0; side < 2; ++side) {
        if (seen_epoch_[side].size() != n) {
            seen_epoch_[side].assign(n, 0);
            seen_dist_[side].assign(n, 0);
        }
    }
    const std::int64_t epoch = ++bfs_epoch_;
    const auto seen = [&](int side, node_id v) {
        return seen_epoch_[side][static_cast<std::size_t>(v)] == epoch;
    };
    const auto mark = [&](int side, node_id v, int d) {
        seen_epoch_[side][static_cast<std::size_t>(v)] = epoch;
        seen_dist_[side][static_cast<std::size_t>(v)] = d;
    };
    frontier_[0].assign(1, from);
    frontier_[1].assign(1, to);
    mark(0, from, 0);
    mark(1, to, 0);
    int depth[2] = {0, 0};
    int best = -1;
    std::vector<node_id> next;
    while (!frontier_[0].empty() && !frontier_[1].empty()) {
        // A meeting found at combined depth d rules out anything shorter
        // once both search trees cover depth[0] + depth[1] >= d.
        if (best >= 0 && best <= depth[0] + depth[1]) return best;
        const int side = frontier_[0].size() <= frontier_[1].size() ? 0 : 1;
        const int other = 1 - side;
        next.clear();
        for (const node_id v : frontier_[side]) {
            for (const node_id w : graph_->neighbors(v)) {
                if (seen(side, w)) continue;
                mark(side, w, depth[side] + 1);
                if (seen(other, w)) {
                    const int total = depth[side] + 1 + seen_dist_[other][static_cast<std::size_t>(w)];
                    if (best < 0 || total < best) best = total;
                }
                next.push_back(w);
            }
        }
        frontier_[side].swap(next);
        ++depth[side];
    }
    return best;
}

int routing_table::distance(node_id from, node_id to) const {
    sync();
    if (!graph_->valid_node(from) || !graph_->valid_node(to))
        throw std::out_of_range{"routing_table: bad node"};
    int d = -1;
    if (const row* r = resident_row(from)) {
        touch(*rows_[static_cast<std::size_t>(from)]);
        d = r->dist[static_cast<std::size_t>(to)];
    } else if (const row* rt = resident_row(to)) {
        touch(*rows_[static_cast<std::size_t>(to)]);
        d = rt->dist[static_cast<std::size_t>(from)];
    } else {
        d = bidirectional_distance(from, to);
    }
    if (d < 0) throw std::invalid_argument{"routing_table: nodes not connected"};
    return d;
}

node_id routing_table::next_hop(node_id from, node_id to) const {
    sync();
    if (from == to) throw std::invalid_argument{"routing_table: next_hop of a node to itself"};
    if (!graph_->valid_node(from)) throw std::out_of_range{"routing_table: bad node"};
    const node_id hop = row_for(to).toward[static_cast<std::size_t>(from)];
    if (hop == invalid_node) throw std::invalid_argument{"routing_table: nodes not connected"};
    return hop;
}

std::vector<node_id> routing_table::path(node_id from, node_id to) const {
    sync();
    if (!graph_->valid_node(from) || !graph_->valid_node(to))
        throw std::out_of_range{"routing_table: bad node"};
    if (from == to) return {from};
    // Prefer a resident endpoint row; root at `from` when neither is
    // resident (messages fan out from one source to many destinations, so
    // the source row is the one that gets reused).  In source-rooted mode
    // the dest-row shortcut is skipped so the answer is a pure function of
    // the endpoints (see header).
    const row* src = resident_row(from);
    if (src == nullptr && source_rooted_paths_) src = &row_for(from);
    if (src == nullptr) {
        if (const row* dst = resident_row(to)) {
            touch(*rows_[static_cast<std::size_t>(to)]);
            // Walk from -> to down the tree rooted at `to`.
            std::vector<node_id> p;
            for (node_id v = from; v != invalid_node; v = dst->toward[static_cast<std::size_t>(v)]) {
                p.push_back(v);
                if (v == to) return p;
            }
            throw std::invalid_argument{"routing_table: nodes not connected"};
        }
        src = &row_for(from);
    } else {
        touch(*rows_[static_cast<std::size_t>(from)]);
    }
    // Walk to -> from up the tree rooted at `from`, then reverse.
    std::vector<node_id> p;
    for (node_id v = to; v != invalid_node; v = src->toward[static_cast<std::size_t>(v)]) {
        p.push_back(v);
        if (v == from) {
            std::reverse(p.begin(), p.end());
            return p;
        }
    }
    throw std::invalid_argument{"routing_table: nodes not connected"};
}

std::int64_t routing_table::multicast_cost(node_id source,
                                           std::span<const node_id> targets) const {
    sync();
    const auto& r = row_for(source);
    std::vector<char> reached(static_cast<std::size_t>(graph_->node_count()), 0);
    reached[static_cast<std::size_t>(source)] = 1;
    std::int64_t edges = 0;
    for (node_id t : targets) {
        if (!graph_->valid_node(t)) throw std::out_of_range{"multicast_cost: bad target"};
        node_id v = t;
        // Walk toward the source until we merge with an already-counted path.
        while (!reached[static_cast<std::size_t>(v)]) {
            reached[static_cast<std::size_t>(v)] = 1;
            ++edges;
            v = r.toward[static_cast<std::size_t>(v)];
            if (v == invalid_node) throw std::invalid_argument{"multicast_cost: not connected"};
        }
    }
    return edges;
}

std::int64_t routing_table::unicast_cost(node_id source,
                                         std::span<const node_id> targets) const {
    sync();
    std::int64_t total = 0;
    for (node_id t : targets) total += distance(source, t);
    return total;
}

}  // namespace mm::net
