#include "net/partition.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "net/topologies.h"

namespace mm::net {

node_id graph_partition::covering_node(int part, int label) const {
    const auto& p = parts.at(static_cast<std::size_t>(part));
    if (label < 0 || label >= label_count)
        throw std::out_of_range{"graph_partition::covering_node: bad label"};
    return p[static_cast<std::size_t>(label) % p.size()];
}

std::vector<node_id> graph_partition::nodes_with_label(int label) const {
    std::vector<node_id> out;
    out.reserve(parts.size());
    for (int p = 0; p < part_count(); ++p) out.push_back(covering_node(p, label));
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
}

int graph_partition::labels_covered_by(node_id v) const {
    const auto& part = parts.at(static_cast<std::size_t>(part_of.at(static_cast<std::size_t>(v))));
    const int size = static_cast<int>(part.size());
    const int rank = label_of[static_cast<std::size_t>(v)];
    // Labels rank, rank + size, rank + 2*size, ... below label_count.
    return (label_count - rank + size - 1) / size;
}

graph_partition partition_connected(const graph& g, int target_size) {
    const node_id n = g.node_count();
    if (n == 0) throw std::invalid_argument{"partition_connected: empty graph"};
    if (!g.connected()) throw std::invalid_argument{"partition_connected: graph not connected"};
    if (target_size <= 0)
        target_size = static_cast<int>(std::ceil(std::sqrt(static_cast<double>(n))));
    target_size = std::max(1, std::min<int>(target_size, n));

    const auto parent = spanning_tree_parents(g, 0);

    // Children lists and an order where every child precedes its parent.
    std::vector<std::vector<node_id>> children(static_cast<std::size_t>(n));
    for (node_id v = 0; v < n; ++v)
        if (parent[static_cast<std::size_t>(v)] != invalid_node)
            children[static_cast<std::size_t>(parent[static_cast<std::size_t>(v)])].push_back(v);
    std::vector<node_id> order(static_cast<std::size_t>(n));
    {
        const auto depth = tree_depths(parent);
        for (node_id v = 0; v < n; ++v) order[static_cast<std::size_t>(v)] = v;
        std::sort(order.begin(), order.end(), [&](node_id a, node_id b) {
            return depth[static_cast<std::size_t>(a)] > depth[static_cast<std::size_t>(b)];
        });
    }

    graph_partition out;
    out.part_of.assign(static_cast<std::size_t>(n), -1);
    std::vector<int> attached_size(static_cast<std::size_t>(n), 0);

    // Collects the still-attached subtrees of `roots` into one part, plus
    // `hub` itself (without descending into hub's other children).
    const auto cut_part = [&](const std::vector<node_id>& roots, node_id hub) {
        std::vector<node_id> members;
        std::vector<node_id> stack{roots};
        const int part_index = static_cast<int>(out.parts.size());
        if (hub != invalid_node) {
            members.push_back(hub);
            out.part_of[static_cast<std::size_t>(hub)] = part_index;
        }
        while (!stack.empty()) {
            const node_id u = stack.back();
            stack.pop_back();
            if (out.part_of[static_cast<std::size_t>(u)] >= 0) continue;
            members.push_back(u);
            out.part_of[static_cast<std::size_t>(u)] = part_index;
            for (node_id c : children[static_cast<std::size_t>(u)])
                if (out.part_of[static_cast<std::size_t>(c)] < 0) stack.push_back(c);
        }
        std::sort(members.begin(), members.end());
        out.parts.push_back(std::move(members));
    };

    for (node_id v : order) {
        // Accumulate child remainders one by one; the moment v's bag reaches
        // the target, cut v plus exactly the accumulated subtrees.  Children
        // processed after the cut lose their connector (v) and are shed as
        // their own parts - this caps every part below 2*target_size even at
        // high-degree hubs.
        int acc = 1;
        std::vector<node_id> bag;
        bool v_used = false;
        for (node_id c : children[static_cast<std::size_t>(v)]) {
            if (out.part_of[static_cast<std::size_t>(c)] >= 0) continue;  // already cut below
            if (v_used) {
                // v is gone; this child's remainder becomes its own part.
                cut_part({c}, invalid_node);
                continue;
            }
            bag.push_back(c);
            acc += attached_size[static_cast<std::size_t>(c)];
            if (acc >= target_size) {
                cut_part(bag, v);
                v_used = true;
            }
        }
        if (!v_used && acc >= target_size) {  // only reachable for target 1
            cut_part(bag, v);
            v_used = true;
        }
        attached_size[static_cast<std::size_t>(v)] = v_used ? 0 : acc;
    }

    // Whatever stayed attached to the root becomes its own (small) part;
    // small parts are fine, they wrap labels.
    std::vector<node_id> leftover;
    for (node_id v = 0; v < n; ++v)
        if (out.part_of[static_cast<std::size_t>(v)] < 0) leftover.push_back(v);
    if (!leftover.empty()) {
        const int part_index = static_cast<int>(out.parts.size());
        for (node_id v : leftover) out.part_of[static_cast<std::size_t>(v)] = part_index;
        out.parts.push_back(std::move(leftover));
    }

    // Labels: the alphabet is the largest part's size; a node's primary
    // label is its rank in its part; smaller parts cover the rest of the
    // alphabet by wrap-around (covering_node).
    int largest = 0;
    for (const auto& part : out.parts) largest = std::max<int>(largest, static_cast<int>(part.size()));
    out.label_count = largest;
    out.label_of.assign(static_cast<std::size_t>(n), 0);
    for (const auto& part : out.parts)
        for (std::size_t rank = 0; rank < part.size(); ++rank)
            out.label_of[static_cast<std::size_t>(part[rank])] = static_cast<int>(rank);
    return out;
}

}  // namespace mm::net
