#include "net/projective_plane.h"

#include <stdexcept>

namespace mm::net {

projective_plane::projective_plane(int q) : q_{q}, n_{q * q + q + 1}, field_{q} {
    // Normalized representatives of the 1-dimensional subspaces of GF(q)^3:
    // (1, y, z), (0, 1, z), (0, 0, 1).
    triples_.reserve(static_cast<std::size_t>(n_));
    for (int y = 0; y < q_; ++y)
        for (int z = 0; z < q_; ++z) triples_.push_back({1, y, z});
    for (int z = 0; z < q_; ++z) triples_.push_back({0, 1, z});
    triples_.push_back({0, 0, 1});
    if (static_cast<int>(triples_.size()) != n_)
        throw std::logic_error{"projective_plane: representative count mismatch"};

    line_points_.resize(static_cast<std::size_t>(n_));
    point_lines_.resize(static_cast<std::size_t>(n_));
    for (int line = 0; line < n_; ++line) {
        for (node_id point = 0; point < n_; ++point) {
            if (incident(point, line)) {
                line_points_[static_cast<std::size_t>(line)].push_back(point);
                point_lines_[static_cast<std::size_t>(point)].push_back(line);
            }
        }
        if (static_cast<int>(line_points_[static_cast<std::size_t>(line)].size()) != q_ + 1)
            throw std::logic_error{"projective_plane: line does not have q+1 points"};
    }
}

std::span<const node_id> projective_plane::points_on_line(int line) const {
    return line_points_.at(static_cast<std::size_t>(line));
}

std::span<const int> projective_plane::lines_through_point(node_id point) const {
    return point_lines_.at(static_cast<std::size_t>(point));
}

bool projective_plane::incident(node_id point, int line) const {
    const auto& p = triples_.at(static_cast<std::size_t>(point));
    const auto& l = triples_.at(static_cast<std::size_t>(line));
    int dot = 0;
    for (int i = 0; i < 3; ++i)
        dot = field_.add(dot, field_.mul(p[static_cast<std::size_t>(i)],
                                         l[static_cast<std::size_t>(i)]));
    return dot == 0;
}

node_id projective_plane::common_point(int line_a, int line_b) const {
    if (line_a == line_b)
        throw std::invalid_argument{"projective_plane: common point of identical lines"};
    const auto& a = line_points_.at(static_cast<std::size_t>(line_a));
    const auto& b = line_points_.at(static_cast<std::size_t>(line_b));
    // Both lists are sorted; intersect by merge.
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < a.size() && j < b.size()) {
        if (a[i] == b[j]) return a[i];
        if (a[i] < b[j]) {
            ++i;
        } else {
            ++j;
        }
    }
    throw std::logic_error{"projective_plane: distinct lines with no common point"};
}

std::array<int, 3> projective_plane::point_coords(node_id point) const {
    return triples_.at(static_cast<std::size_t>(point));
}

std::array<int, 3> projective_plane::line_coords(int line) const {
    return triples_.at(static_cast<std::size_t>(line));
}

}  // namespace mm::net
