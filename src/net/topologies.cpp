#include "net/topologies.h"

#include <queue>
#include <stdexcept>

namespace mm::net {

graph make_complete(node_id n) {
    graph g{n};
    for (node_id a = 0; a < n; ++a)
        for (node_id b = a + 1; b < n; ++b) g.add_edge(a, b);
    g.finalize();
    return g;
}

graph make_ring(node_id n) {
    if (n < 3) throw std::invalid_argument{"make_ring: need n >= 3"};
    graph g{n};
    for (node_id v = 0; v < n; ++v) g.add_edge(v, (v + 1) % n);
    g.finalize();
    return g;
}

graph make_path(node_id n) {
    graph g{n};
    for (node_id v = 0; v + 1 < n; ++v) g.add_edge(v, v + 1);
    g.finalize();
    return g;
}

graph make_star(node_id n) {
    if (n < 1) throw std::invalid_argument{"make_star: need n >= 1"};
    graph g{n};
    for (node_id v = 1; v < n; ++v) g.add_edge(0, v);
    g.finalize();
    return g;
}

graph make_grid(node_id rows, node_id cols, wrap_mode wrap) {
    if (rows < 1 || cols < 1) throw std::invalid_argument{"make_grid: need positive extents"};
    graph g{rows * cols};
    const auto at = [cols](node_id r, node_id c) { return r * cols + c; };
    for (node_id r = 0; r < rows; ++r) {
        for (node_id c = 0; c < cols; ++c) {
            if (c + 1 < cols) g.add_edge(at(r, c), at(r, c + 1));
            if (r + 1 < rows) g.add_edge(at(r, c), at(r + 1, c));
        }
    }
    const bool wrap_rows = wrap != wrap_mode::none;
    const bool wrap_cols = wrap == wrap_mode::torus;
    if (wrap_rows && cols > 2)
        for (node_id r = 0; r < rows; ++r) g.add_edge(at(r, cols - 1), at(r, 0));
    if (wrap_cols && rows > 2)
        for (node_id c = 0; c < cols; ++c) g.add_edge(at(rows - 1, c), at(0, c));
    g.finalize();
    return g;
}

mesh_shape::mesh_shape(std::vector<node_id> dims) : dims_{std::move(dims)} {
    if (dims_.empty()) throw std::invalid_argument{"mesh_shape: need at least one dimension"};
    total_ = 1;
    for (node_id d : dims_) {
        if (d < 1) throw std::invalid_argument{"mesh_shape: extents must be positive"};
        total_ *= d;
    }
}

std::vector<node_id> mesh_shape::coords(node_id index) const {
    if (index < 0 || index >= total_) throw std::out_of_range{"mesh_shape::coords"};
    std::vector<node_id> c(dims_.size());
    for (int dim = static_cast<int>(dims_.size()) - 1; dim >= 0; --dim) {
        const node_id extent = dims_[static_cast<std::size_t>(dim)];
        c[static_cast<std::size_t>(dim)] = index % extent;
        index /= extent;
    }
    return c;
}

node_id mesh_shape::index(const std::vector<node_id>& coords) const {
    if (coords.size() != dims_.size()) throw std::invalid_argument{"mesh_shape::index: rank mismatch"};
    node_id idx = 0;
    for (std::size_t dim = 0; dim < dims_.size(); ++dim) {
        if (coords[dim] < 0 || coords[dim] >= dims_[dim])
            throw std::out_of_range{"mesh_shape::index: coordinate out of range"};
        idx = idx * dims_[dim] + coords[dim];
    }
    return idx;
}

graph make_mesh(const mesh_shape& shape, bool torus) {
    graph g{shape.node_count()};
    for (node_id v = 0; v < shape.node_count(); ++v) {
        auto c = shape.coords(v);
        for (int dim = 0; dim < shape.dimensions(); ++dim) {
            const node_id extent = shape.extent(dim);
            const node_id orig = c[static_cast<std::size_t>(dim)];
            if (orig + 1 < extent) {
                c[static_cast<std::size_t>(dim)] = orig + 1;
                g.add_edge(v, shape.index(c));
            } else if (torus && extent > 2) {
                c[static_cast<std::size_t>(dim)] = 0;
                g.add_edge(v, shape.index(c));
            }
            c[static_cast<std::size_t>(dim)] = orig;
        }
    }
    g.finalize();
    return g;
}

graph make_hypercube(int d) {
    if (d < 0 || d > 24) throw std::invalid_argument{"make_hypercube: need 0 <= d <= 24"};
    const node_id n = node_id{1} << d;
    graph g{n};
    for (node_id v = 0; v < n; ++v)
        for (int bit = 0; bit < d; ++bit) {
            const node_id w = v ^ (node_id{1} << bit);
            if (w > v) g.add_edge(v, w);
        }
    g.finalize();
    return g;
}

node_id ccc_index(int d, int position, std::uint32_t corner) {
    return static_cast<node_id>(corner) * d + position;
}

int ccc_position(int d, node_id v) { return static_cast<int>(v % d); }

std::uint32_t ccc_corner(int d, node_id v) { return static_cast<std::uint32_t>(v / d); }

graph make_ccc(int d) {
    if (d < 2 || d > 20) throw std::invalid_argument{"make_ccc: need 2 <= d <= 20"};
    const node_id corners = node_id{1} << d;
    graph g{corners * d};
    for (std::uint32_t x = 0; x < static_cast<std::uint32_t>(corners); ++x) {
        for (int p = 0; p < d; ++p) {
            // Cycle edge to position p+1 (a 2-cycle for d == 2 collapses to one edge).
            const int next = (p + 1) % d;
            if (next != p && !g.has_edge(ccc_index(d, p, x), ccc_index(d, next, x)))
                g.add_edge(ccc_index(d, p, x), ccc_index(d, next, x));
            // Cube edge along dimension p.
            const std::uint32_t y = x ^ (std::uint32_t{1} << p);
            if (y > x) g.add_edge(ccc_index(d, p, x), ccc_index(d, p, y));
        }
    }
    g.finalize();
    return g;
}

graph make_balanced_tree(int branching, int depth) {
    if (branching < 1 || depth < 0) throw std::invalid_argument{"make_balanced_tree: bad shape"};
    // Node count = 1 + b + b^2 + ... + b^depth.
    node_id n = 1;
    node_id level = 1;
    for (int i = 0; i < depth; ++i) {
        level *= branching;
        n += level;
    }
    graph g{n};
    // Breadth-first layout: children of node v are b*v+1 .. b*v+b while in range.
    for (node_id v = 0; v < n; ++v) {
        for (int k = 1; k <= branching; ++k) {
            const node_id child = static_cast<node_id>(v) * branching + k;
            if (child < n) g.add_edge(v, child);
        }
    }
    g.finalize();
    return g;
}

graph make_tree(const std::vector<node_id>& parent) {
    const node_id n = static_cast<node_id>(parent.size());
    graph g{n};
    int roots = 0;
    for (node_id v = 0; v < n; ++v) {
        if (parent[static_cast<std::size_t>(v)] == invalid_node) {
            ++roots;
        } else {
            g.add_edge(v, parent[static_cast<std::size_t>(v)]);
        }
    }
    if (n > 0 && roots != 1) throw std::invalid_argument{"make_tree: need exactly one root"};
    g.finalize();
    return g;
}

std::vector<node_id> spanning_tree_parents(const graph& g, node_id root) {
    if (!g.valid_node(root)) throw std::out_of_range{"spanning_tree_parents: bad root"};
    std::vector<node_id> parent(static_cast<std::size_t>(g.node_count()), invalid_node);
    std::vector<char> seen(static_cast<std::size_t>(g.node_count()), 0);
    std::queue<node_id> frontier;
    frontier.push(root);
    seen[static_cast<std::size_t>(root)] = 1;
    while (!frontier.empty()) {
        const node_id v = frontier.front();
        frontier.pop();
        for (node_id w : g.neighbors(v)) {
            if (!seen[static_cast<std::size_t>(w)]) {
                seen[static_cast<std::size_t>(w)] = 1;
                parent[static_cast<std::size_t>(w)] = v;
                frontier.push(w);
            }
        }
    }
    for (node_id v = 0; v < g.node_count(); ++v)
        if (!seen[static_cast<std::size_t>(v)])
            throw std::invalid_argument{"spanning_tree_parents: graph not connected"};
    return parent;
}

std::vector<int> tree_depths(const std::vector<node_id>& parent) {
    const std::size_t n = parent.size();
    std::vector<int> depth(n, -1);
    for (std::size_t v = 0; v < n; ++v) {
        // Walk up to the first ancestor with a known depth, then unwind.
        std::vector<node_id> path;
        node_id u = static_cast<node_id>(v);
        while (u != invalid_node && depth[static_cast<std::size_t>(u)] < 0) {
            path.push_back(u);
            u = parent[static_cast<std::size_t>(u)];
        }
        int base = (u == invalid_node) ? -1 : depth[static_cast<std::size_t>(u)];
        for (auto it = path.rbegin(); it != path.rend(); ++it)
            depth[static_cast<std::size_t>(*it)] = ++base;
    }
    return depth;
}

}  // namespace mm::net
