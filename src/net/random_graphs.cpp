#include "net/random_graphs.h"

#include <random>
#include <stdexcept>

#include "net/topologies.h"

namespace mm::net {

namespace {

std::vector<node_id> random_tree_parents(node_id n, std::uint64_t seed) {
    if (n < 1) throw std::invalid_argument{"random tree: need n >= 1"};
    std::mt19937_64 rng{seed};
    std::vector<node_id> parent(static_cast<std::size_t>(n), invalid_node);
    for (node_id v = 1; v < n; ++v) {
        std::uniform_int_distribution<node_id> pick{0, v - 1};
        parent[static_cast<std::size_t>(v)] = pick(rng);
    }
    return parent;
}

}  // namespace

graph make_random_tree(node_id n, std::uint64_t seed) {
    return make_tree(random_tree_parents(n, seed));
}

std::vector<node_id> make_preferential_tree_parents(node_id n, std::uint64_t seed) {
    if (n < 1) throw std::invalid_argument{"preferential tree: need n >= 1"};
    std::mt19937_64 rng{seed};
    std::vector<node_id> parent(static_cast<std::size_t>(n), invalid_node);
    // endpoints[i] holds one endpoint per degree unit; sampling from it is
    // sampling proportional to degree + 1 (each node is pre-seeded once).
    std::vector<node_id> endpoints;
    endpoints.reserve(static_cast<std::size_t>(2 * n));
    endpoints.push_back(0);
    for (node_id v = 1; v < n; ++v) {
        std::uniform_int_distribution<std::size_t> pick{0, endpoints.size() - 1};
        const node_id p = endpoints[pick(rng)];
        parent[static_cast<std::size_t>(v)] = p;
        endpoints.push_back(p);
        endpoints.push_back(v);
    }
    return parent;
}

graph make_preferential_tree(node_id n, std::uint64_t seed) {
    return make_tree(make_preferential_tree_parents(n, seed));
}

graph make_uucp_like(node_id n, node_id extra_edges, std::uint64_t seed) {
    auto parent = make_preferential_tree_parents(n, seed);
    graph g = make_tree(parent);
    std::mt19937_64 rng{seed ^ 0x9e3779b97f4a7c15ULL};
    std::uniform_int_distribution<node_id> pick{0, n - 1};
    node_id added = 0;
    int attempts = 0;
    while (added < extra_edges && attempts < 64 * extra_edges + 64) {
        ++attempts;
        const node_id a = pick(rng);
        const node_id b = pick(rng);
        if (a == b || g.has_edge(a, b)) continue;
        g.add_edge(a, b);
        ++added;
    }
    g.finalize();
    return g;
}

graph make_random_connected(node_id n, node_id extra_edges, std::uint64_t seed) {
    graph g = make_random_tree(n, seed);
    std::mt19937_64 rng{seed ^ 0xda942042e4dd58b5ULL};
    std::uniform_int_distribution<node_id> pick{0, n - 1};
    node_id added = 0;
    int attempts = 0;
    while (added < extra_edges && attempts < 64 * extra_edges + 64) {
        ++attempts;
        const node_id a = pick(rng);
        const node_id b = pick(rng);
        if (a == b || g.has_edge(a, b)) continue;
        g.add_edge(a, b);
        ++added;
    }
    g.finalize();
    return g;
}

std::vector<int> degree_histogram(const graph& g) {
    std::vector<int> hist(static_cast<std::size_t>(g.max_degree()) + 1, 0);
    for (node_id v = 0; v < g.node_count(); ++v)
        ++hist[static_cast<std::size_t>(g.degree(v))];
    return hist;
}

}  // namespace mm::net
