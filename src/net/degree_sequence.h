// degree_sequence.h - realizing exact degree sequences as graphs.
//
// Section 3.6 characterizes existing networks purely by their degree table.
// These builders realize such a table *exactly*: Havel-Hakimi constructs a
// simple graph with the prescribed degree sequence, and degree-preserving
// 2-swaps stitch its components together so the positive-degree part
// becomes connected (isolated degree-0 sites - the paper's "loyalist" -
// stay isolated, as they must).
#pragma once

#include <vector>

#include "net/graph.h"

namespace mm::net {

// True iff `degrees` is realizable as a simple graph (Erdos-Gallai).
[[nodiscard]] bool degree_sequence_graphical(std::vector<int> degrees);

// Builds a simple graph whose node v has exactly degrees[v] edges.
// Throws std::invalid_argument if the sequence is not graphical.
[[nodiscard]] graph make_graph_with_degrees(const std::vector<int>& degrees);

// Like make_graph_with_degrees, then rewires edges (preserving all degrees)
// until all positive-degree nodes lie in one connected component.  Throws
// std::invalid_argument if impossible (e.g. too few edges to connect).
[[nodiscard]] graph make_connected_graph_with_degrees(const std::vector<int>& degrees);

// Expands a (sites, degree) histogram - e.g. the paper's UUCP table - into
// a per-node degree vector (sorted descending).
[[nodiscard]] std::vector<int> degrees_from_histogram(
    const std::vector<std::pair<int, int>>& sites_by_degree);

}  // namespace mm::net
