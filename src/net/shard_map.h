// shard_map.h - locality-preserving node -> shard assignment for the
// parallel simulator.
//
// The paper's network model is embarrassingly parallel within a tick: nodes
// only interact through messages, and a message needs at least one tick per
// hop.  The parallel engine (sim/simulator.h, set_worker_threads) therefore
// pins every node to one *shard*; all events at a node execute on the
// worker that owns the node's shard, and cross-shard messages travel
// through mailboxes that are merged at tick barriers.
//
// The assignment is built from net::partition_connected - the paper's
// Erdos-Gerencser-Mate O(sqrt n) carve of a connected graph into connected
// parts (Section 3) - so each shard is a union of connected, local regions
// rather than a hash-scatter: messages between nearby nodes tend to stay
// within one shard, which keeps the mailbox volume low.  Parts are packed
// into shards largest-first onto the currently lightest shard, a
// deterministic LPT bin-packing, so shard sizes stay balanced even when the
// carve produces uneven parts (hierarchies with high-degree gateways).
//
// Everything here is a pure function of (graph, shard_count) - two builds
// over the same graph yield the identical map, which the parallel engine's
// determinism contract relies on.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iterator>
#include <utility>
#include <vector>

#include "net/graph.h"

namespace mm::net {

class shard_map {
public:
    // Trivial map: every node in shard 0.
    shard_map() = default;

    // Explicit assignment (region hints): owner[v] = shard of node v.
    // Values must cover 0..shard_count-1 with no gaps in use; shard ids
    // outside [0, shard_count) throw.
    shard_map(std::vector<int> owner, int shard_count);

    [[nodiscard]] int shard_count() const noexcept { return shard_count_; }
    [[nodiscard]] node_id node_count() const noexcept {
        return static_cast<node_id>(owner_.size());
    }

    [[nodiscard]] int shard_of(node_id v) const {
        return owner_[static_cast<std::size_t>(v)];
    }

    // Nodes per shard (for balance checks and worker sizing).
    [[nodiscard]] const std::vector<node_id>& shard_sizes() const noexcept { return sizes_; }

    // --- dynamic membership -------------------------------------------------
    // Absorbs a joining (or rejoining) node into an existing shard and
    // returns the chosen shard.  Preference order, all deterministic:
    //  1. the shard owning the most of v's present neighbors in `g` (ties to
    //     the lowest shard id) - the locality rule, a join usually lands
    //     where its attachment edges already live;
    //  2. when that shard is overloaded (more than twice the mean live
    //     load), the lightest shard instead - the occasional LPT re-balance
    //     step that replaces a full re-pack.
    // The choice is a pure function of (current map state, g, v), so every
    // engine replaying the same membership sequence builds the same map.
    int absorb(const graph& g, node_id v);

    // Releases a leaving node: its shard keeps the id (shard_of(v) stays
    // defined for stale lookups) but the load accounting drops it, so later
    // absorbs re-balance against live load only.
    void release(node_id v);

private:
    std::vector<int> owner_;
    std::vector<node_id> sizes_;
    int shard_count_ = 1;
};

// Builds a shard map over a connected graph: carve with partition_connected
// (part target ~ n / (4 * shards), so each shard packs several connected
// regions), then LPT-pack parts into `shards` bins.  shards is clamped to
// [1, node_count].  Deterministic.
[[nodiscard]] shard_map make_shard_map(const graph& g, int shards);

// --- barrier-pipeline merge helpers ------------------------------------------
//
// The parallel engine's tick barrier has to merge per-shard, already-sorted
// event runs (round lists, cross-shard mailboxes) without funnelling a
// global O(R log R) sort through the coordinator.  Both helpers below work
// on k sorted runs accessed through `run(s)` (any indexable, sized
// container; `run_count` runs in total, each sorted by `less`), are pure,
// and take caller-owned scratch, so every shard can execute its own merge
// inside a barrier with no shared state.  Correctness needs elements to be
// pairwise distinct under `less` across runs - event ordering keys are
// globally unique, so the merged order is a strict total order.

// Rank of every element of run `self` within the k-way merged order of all
// runs: ranks[i] = i + the number of elements of every other run that sort
// before run(self)[i].  These are exactly the positions a global sort of
// the concatenated runs would assign, computed with O(sum of run lengths)
// two-pointer walks - and independently per run, so k shards can rank a
// round in parallel instead of serializing one big sort.
template <class GetRun, class Less>
void kway_merge_ranks(std::size_t run_count, GetRun&& run, std::size_t self, Less&& less,
                      std::vector<std::int64_t>& ranks) {
    const auto& mine = run(self);
    const auto n = static_cast<std::size_t>(std::size(mine));
    ranks.resize(n);
    for (std::size_t i = 0; i < n; ++i) ranks[i] = static_cast<std::int64_t>(i);
    for (std::size_t other = 0; other < run_count; ++other) {
        if (other == self) continue;
        const auto& theirs = run(other);
        const auto m = static_cast<std::size_t>(std::size(theirs));
        std::size_t j = 0;
        for (std::size_t i = 0; i < n; ++i) {
            while (j < m && less(theirs[j], mine[i])) ++j;
            ranks[i] += static_cast<std::int64_t>(j);
        }
    }
}

// Merges the k sorted runs into one stream, invoking emit(element&&) in
// merged order (elements are moved out of their runs).  Linear selection
// over the k heads per element - k is the shard count, a handful - so the
// merge is O(total * k) with zero allocation beyond the reused cursor
// scratch.
template <class GetRun, class Less, class Emit>
void kway_merge(std::size_t run_count, GetRun&& run, Less&& less, Emit&& emit,
                std::vector<std::size_t>& cursors) {
    cursors.assign(run_count, 0);
    for (;;) {
        std::size_t best = run_count;
        for (std::size_t s = 0; s < run_count; ++s) {
            const auto& r = run(s);
            if (cursors[s] >= static_cast<std::size_t>(std::size(r))) continue;
            if (best == run_count || less(r[cursors[s]], run(best)[cursors[best]])) best = s;
        }
        if (best == run_count) return;
        emit(std::move(run(best)[cursors[best]]));
        ++cursors[best];
    }
}

}  // namespace mm::net
