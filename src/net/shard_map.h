// shard_map.h - locality-preserving node -> shard assignment for the
// parallel simulator.
//
// The paper's network model is embarrassingly parallel within a tick: nodes
// only interact through messages, and a message needs at least one tick per
// hop.  The parallel engine (sim/simulator.h, set_worker_threads) therefore
// pins every node to one *shard*; all events at a node execute on the
// worker that owns the node's shard, and cross-shard messages travel
// through mailboxes that are merged at tick barriers.
//
// The assignment is built from net::partition_connected - the paper's
// Erdos-Gerencser-Mate O(sqrt n) carve of a connected graph into connected
// parts (Section 3) - so each shard is a union of connected, local regions
// rather than a hash-scatter: messages between nearby nodes tend to stay
// within one shard, which keeps the mailbox volume low.  Parts are packed
// into shards largest-first onto the currently lightest shard, a
// deterministic LPT bin-packing, so shard sizes stay balanced even when the
// carve produces uneven parts (hierarchies with high-degree gateways).
//
// Everything here is a pure function of (graph, shard_count) - two builds
// over the same graph yield the identical map, which the parallel engine's
// determinism contract relies on.
#pragma once

#include <vector>

#include "net/graph.h"

namespace mm::net {

class shard_map {
public:
    // Trivial map: every node in shard 0.
    shard_map() = default;

    // Explicit assignment (region hints): owner[v] = shard of node v.
    // Values must cover 0..shard_count-1 with no gaps in use; shard ids
    // outside [0, shard_count) throw.
    shard_map(std::vector<int> owner, int shard_count);

    [[nodiscard]] int shard_count() const noexcept { return shard_count_; }
    [[nodiscard]] node_id node_count() const noexcept {
        return static_cast<node_id>(owner_.size());
    }

    [[nodiscard]] int shard_of(node_id v) const {
        return owner_[static_cast<std::size_t>(v)];
    }

    // Nodes per shard (for balance checks and worker sizing).
    [[nodiscard]] const std::vector<node_id>& shard_sizes() const noexcept { return sizes_; }

private:
    std::vector<int> owner_;
    std::vector<node_id> sizes_;
    int shard_count_ = 1;
};

// Builds a shard map over a connected graph: carve with partition_connected
// (part target ~ n / (4 * shards), so each shard packs several connected
// regions), then LPT-pack parts into `shards` bins.  shards is clamped to
// [1, node_count].  Deterministic.
[[nodiscard]] shard_map make_shard_map(const graph& g, int shards);

}  // namespace mm::net
