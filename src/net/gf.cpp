#include "net/gf.h"

#include <stdexcept>
#include <string>

namespace mm::net {

namespace {

// Multiplies two polynomials over GF(p) given as digit vectors.
std::vector<int> poly_mul(const std::vector<int>& a, const std::vector<int>& b, int p) {
    if (a.empty() || b.empty()) return {};
    std::vector<int> out(a.size() + b.size() - 1, 0);
    for (std::size_t i = 0; i < a.size(); ++i)
        for (std::size_t j = 0; j < b.size(); ++j)
            out[i + j] = (out[i + j] + a[i] * b[j]) % p;
    while (!out.empty() && out.back() == 0) out.pop_back();
    return out;
}

// Remainder of a modulo the monic polynomial mod, over GF(p).
std::vector<int> poly_rem(std::vector<int> a, const std::vector<int>& mod, int p) {
    const auto deg_mod = static_cast<int>(mod.size()) - 1;
    while (static_cast<int>(a.size()) - 1 >= deg_mod) {
        const int shift = static_cast<int>(a.size()) - 1 - deg_mod;
        const int factor = a.back();
        for (int i = 0; i <= deg_mod; ++i) {
            auto& digit = a[static_cast<std::size_t>(i + shift)];
            digit = ((digit - factor * mod[static_cast<std::size_t>(i)]) % p + p) % p;
        }
        while (!a.empty() && a.back() == 0) a.pop_back();
    }
    return a;
}

int encode(const std::vector<int>& poly, int p) {
    int v = 0;
    for (auto it = poly.rbegin(); it != poly.rend(); ++it) v = v * p + *it;
    return v;
}

std::vector<int> decode(int v, int p) {
    std::vector<int> poly;
    while (v > 0) {
        poly.push_back(v % p);
        v /= p;
    }
    return poly;
}

// True if f (monic, degree >= 1) has no monic divisor of degree 1..deg(f)/2.
bool poly_irreducible(const std::vector<int>& f, int p) {
    const int deg = static_cast<int>(f.size()) - 1;
    const auto count_of_degree = [p](int d) {
        long long c = 1;
        for (int i = 0; i < d; ++i) c *= p;
        return c;  // monic polynomials of degree d
    };
    for (int d = 1; 2 * d <= deg; ++d) {
        for (long long lower = 0; lower < count_of_degree(d); ++lower) {
            std::vector<int> g = decode(static_cast<int>(lower), p);
            g.resize(static_cast<std::size_t>(d) + 1, 0);
            g[static_cast<std::size_t>(d)] = 1;  // make monic of degree d
            if (poly_rem(f, g, p).empty()) return false;
        }
    }
    return true;
}

}  // namespace

bool is_prime_power(int q, int* prime, int* exponent) {
    if (q < 2) return false;
    for (int p = 2; p <= q; ++p) {
        if (q % p != 0) continue;
        // p is the smallest divisor, hence prime.
        int m = 0;
        int v = q;
        while (v % p == 0) {
            v /= p;
            ++m;
        }
        if (v != 1) return false;
        if (prime) *prime = p;
        if (exponent) *exponent = m;
        return true;
    }
    return false;
}

finite_field::finite_field(int q) : q_{q} {
    if (q < 2 || q > 4096 || !is_prime_power(q, &p_, &m_))
        throw std::invalid_argument{"finite_field: order " + std::to_string(q) +
                                    " is not a prime power in [2, 4096]"};
    if (m_ > 1) {
        // Find the lexicographically first monic irreducible of degree m.
        long long count = 1;
        for (int i = 0; i < m_; ++i) count *= p_;
        for (long long lower = 0; lower < count; ++lower) {
            std::vector<int> f = decode(static_cast<int>(lower), p_);
            f.resize(static_cast<std::size_t>(m_) + 1, 0);
            f[static_cast<std::size_t>(m_)] = 1;
            if (poly_irreducible(f, p_)) {
                modulus_ = std::move(f);
                break;
            }
        }
        if (modulus_.empty()) throw std::logic_error{"finite_field: no irreducible found"};
    }
    // Precompute multiplication and inverse tables.
    mul_table_.assign(static_cast<std::size_t>(q_) * q_, 0);
    inv_table_.assign(static_cast<std::size_t>(q_), 0);
    for (int a = 0; a < q_; ++a)
        for (int b = 0; b < q_; ++b) {
            const int prod = mul_poly(a, b);
            mul_table_[static_cast<std::size_t>(a) * q_ + b] = prod;
            if (prod == 1) inv_table_[static_cast<std::size_t>(a)] = b;
        }
}

void finite_field::check_element(int a) const {
    if (a < 0 || a >= q_)
        throw std::out_of_range{"finite_field: element " + std::to_string(a) + " out of range"};
}

int finite_field::mul_poly(int a, int b) const {
    if (m_ == 1) return static_cast<int>((static_cast<long long>(a) * b) % p_);
    const auto prod = poly_rem(poly_mul(decode(a, p_), decode(b, p_), p_), modulus_, p_);
    return encode(prod, p_);
}

int finite_field::add(int a, int b) const {
    check_element(a);
    check_element(b);
    if (m_ == 1) return (a + b) % p_;
    int out = 0;
    int scale = 1;
    while (a > 0 || b > 0) {
        out += ((a % p_ + b % p_) % p_) * scale;
        a /= p_;
        b /= p_;
        scale *= p_;
    }
    return out;
}

int finite_field::neg(int a) const {
    check_element(a);
    if (m_ == 1) return (p_ - a) % p_;
    int out = 0;
    int scale = 1;
    while (a > 0) {
        out += ((p_ - a % p_) % p_) * scale;
        a /= p_;
        scale *= p_;
    }
    return out;
}

int finite_field::sub(int a, int b) const { return add(a, neg(b)); }

int finite_field::mul(int a, int b) const {
    check_element(a);
    check_element(b);
    return mul_table_[static_cast<std::size_t>(a) * q_ + b];
}

int finite_field::inv(int a) const {
    check_element(a);
    if (a == 0) throw std::domain_error{"finite_field: inverse of zero"};
    return inv_table_[static_cast<std::size_t>(a)];
}

int finite_field::div(int a, int b) const { return mul(a, inv(b)); }

int finite_field::pow(int a, long long e) const {
    check_element(a);
    if (e < 0) {
        a = inv(a);
        e = -e;
    }
    int out = 1;
    while (e > 0) {
        if (e & 1) out = mul(out, a);
        a = mul(a, a);
        e >>= 1;
    }
    return out;
}

}  // namespace mm::net
