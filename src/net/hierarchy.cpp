#include "net/hierarchy.h"

#include <stdexcept>

namespace mm::net {

hierarchy::hierarchy(std::vector<int> fanouts) : fanouts_{std::move(fanouts)} {
    if (fanouts_.empty()) throw std::invalid_argument{"hierarchy: need at least one level"};
    size_at_level_.resize(fanouts_.size() + 1);
    size_at_level_[0] = 1;
    for (std::size_t i = 0; i < fanouts_.size(); ++i) {
        if (fanouts_[i] < 1) throw std::invalid_argument{"hierarchy: fanouts must be positive"};
        size_at_level_[i + 1] = size_at_level_[i] * fanouts_[i];
    }
    total_ = size_at_level_.back();
}

int hierarchy::fanout(int level) const {
    if (level < 1 || level > levels()) throw std::out_of_range{"hierarchy::fanout"};
    return fanouts_[static_cast<std::size_t>(level - 1)];
}

node_id hierarchy::cluster_size(int level) const {
    if (level < 0 || level > levels()) throw std::out_of_range{"hierarchy::cluster_size"};
    return size_at_level_[static_cast<std::size_t>(level)];
}

int hierarchy::cluster_of(int level, node_id v) const {
    if (v < 0 || v >= total_) throw std::out_of_range{"hierarchy::cluster_of: bad node"};
    return static_cast<int>(v / cluster_size(level));
}

int hierarchy::child_index(int level, node_id v) const {
    return static_cast<int>((v / cluster_size(level - 1)) % fanout(level));
}

node_id hierarchy::gateway(int level, int cluster, int child) const {
    if (child < 0 || child >= fanout(level)) throw std::out_of_range{"hierarchy::gateway: child"};
    const node_id base = static_cast<node_id>(cluster) * cluster_size(level);
    if (base >= total_) throw std::out_of_range{"hierarchy::gateway: cluster"};
    return base + static_cast<node_id>(child) * cluster_size(level - 1);
}

std::vector<node_id> hierarchy::gateways(int level, int cluster) const {
    std::vector<node_id> out;
    out.reserve(static_cast<std::size_t>(fanout(level)));
    for (int child = 0; child < fanout(level); ++child)
        out.push_back(gateway(level, cluster, child));
    return out;
}

graph make_hierarchical_graph(const hierarchy& h) {
    graph g{h.node_count()};
    for (int level = 1; level <= h.levels(); ++level) {
        const int clusters = static_cast<int>(h.node_count() / h.cluster_size(level));
        for (int cluster = 0; cluster < clusters; ++cluster) {
            const auto gw = h.gateways(level, cluster);
            for (std::size_t a = 0; a < gw.size(); ++a)
                for (std::size_t b = a + 1; b < gw.size(); ++b)
                    if (!g.has_edge(gw[a], gw[b])) g.add_edge(gw[a], gw[b]);
        }
    }
    g.finalize();
    return g;
}

}  // namespace mm::net
