#include "net/degree_sequence.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace mm::net {

bool degree_sequence_graphical(std::vector<int> degrees) {
    for (const int d : degrees)
        if (d < 0 || d >= static_cast<int>(degrees.size())) return false;
    std::sort(degrees.begin(), degrees.end(), std::greater<>{});
    const std::int64_t total = std::accumulate(degrees.begin(), degrees.end(), std::int64_t{0});
    if (total % 2 != 0) return false;
    // Erdos-Gallai: for each k, sum of the k largest <= k(k-1) + sum min(d_i, k).
    std::int64_t left = 0;
    for (std::size_t k = 1; k <= degrees.size(); ++k) {
        left += degrees[k - 1];
        std::int64_t right = static_cast<std::int64_t>(k) * (static_cast<std::int64_t>(k) - 1);
        for (std::size_t i = k; i < degrees.size(); ++i)
            right += std::min(degrees[i], static_cast<int>(k));
        if (left > right) return false;
    }
    return true;
}

graph make_graph_with_degrees(const std::vector<int>& degrees) {
    if (!degree_sequence_graphical(degrees))
        throw std::invalid_argument{"make_graph_with_degrees: sequence not graphical"};
    const node_id n = static_cast<node_id>(degrees.size());
    graph g{n};
    // Havel-Hakimi with explicit node ids: repeatedly satisfy the node with
    // the largest remaining demand by connecting it to the next-largest.
    std::vector<std::pair<int, node_id>> remaining;  // (demand, node)
    remaining.reserve(degrees.size());
    for (node_id v = 0; v < n; ++v)
        if (degrees[static_cast<std::size_t>(v)] > 0)
            remaining.emplace_back(degrees[static_cast<std::size_t>(v)], v);

    while (!remaining.empty()) {
        std::sort(remaining.begin(), remaining.end(), std::greater<>{});
        const auto [demand, v] = remaining.front();
        remaining.erase(remaining.begin());
        if (demand > static_cast<int>(remaining.size()))
            throw std::logic_error{"make_graph_with_degrees: Havel-Hakimi underflow"};
        for (int k = 0; k < demand; ++k) {
            auto& [other_demand, w] = remaining[static_cast<std::size_t>(k)];
            g.add_edge(v, w);
            --other_demand;
        }
        std::erase_if(remaining, [](const auto& p) { return p.first == 0; });
    }
    g.finalize();
    return g;
}

namespace {

// Component labels of g restricted to positive-degree nodes.
std::vector<int> positive_components(const graph& g) {
    const auto n = static_cast<std::size_t>(g.node_count());
    std::vector<int> comp(n, -1);
    int next = 0;
    for (node_id v = 0; v < g.node_count(); ++v) {
        if (g.degree(v) == 0 || comp[static_cast<std::size_t>(v)] >= 0) continue;
        std::vector<node_id> stack{v};
        comp[static_cast<std::size_t>(v)] = next;
        while (!stack.empty()) {
            const node_id u = stack.back();
            stack.pop_back();
            for (const node_id w : g.neighbors(u)) {
                if (comp[static_cast<std::size_t>(w)] < 0) {
                    comp[static_cast<std::size_t>(w)] = next;
                    stack.push_back(w);
                }
            }
        }
        ++next;
    }
    return comp;
}

}  // namespace

graph make_connected_graph_with_degrees(const std::vector<int>& degrees) {
    graph g = make_graph_with_degrees(degrees);
    // Repeat: find two components, pick an edge in each, 2-swap them.
    // (a-b, c-d) -> (a-c, b-d) keeps all degrees and merges the components
    // whenever a-c and b-d are not already edges.
    for (int guard = 0; guard < g.node_count() + 8; ++guard) {
        const auto comp = positive_components(g);
        int comp_count = 0;
        for (const int c : comp) comp_count = std::max(comp_count, c + 1);
        if (comp_count <= 1) return g;

        // Collect one edge per component (prefer components with an edge).
        std::vector<std::pair<node_id, node_id>> pick(static_cast<std::size_t>(comp_count),
                                                      {invalid_node, invalid_node});
        for (node_id a = 0; a < g.node_count(); ++a) {
            const int c = comp[static_cast<std::size_t>(a)];
            if (c < 0 || pick[static_cast<std::size_t>(c)].first != invalid_node) continue;
            for (const node_id b : g.neighbors(a)) {
                pick[static_cast<std::size_t>(c)] = {a, b};
                break;
            }
        }
        bool swapped = false;
        for (int c = 1; c < comp_count && !swapped; ++c) {
            const auto [a, b] = pick[0];
            const auto [x, y] = pick[static_cast<std::size_t>(c)];
            if (a == invalid_node || x == invalid_node) continue;
            // Try both pairings of the 2-swap.
            if (!g.has_edge(a, x) && !g.has_edge(b, y)) {
                g.remove_edge(a, b);
                g.remove_edge(x, y);
                g.add_edge(a, x);
                g.add_edge(b, y);
                swapped = true;
            } else if (!g.has_edge(a, y) && !g.has_edge(b, x)) {
                g.remove_edge(a, b);
                g.remove_edge(x, y);
                g.add_edge(a, y);
                g.add_edge(b, x);
                swapped = true;
            }
        }
        if (!swapped)
            throw std::invalid_argument{
                "make_connected_graph_with_degrees: cannot connect (components are cliques?)"};
    }
    throw std::logic_error{"make_connected_graph_with_degrees: did not converge"};
}

std::vector<int> degrees_from_histogram(
    const std::vector<std::pair<int, int>>& sites_by_degree) {
    std::vector<int> out;
    for (const auto& [sites, degree] : sites_by_degree) {
        if (sites < 0 || degree < 0)
            throw std::invalid_argument{"degrees_from_histogram: negative entry"};
        for (int s = 0; s < sites; ++s) out.push_back(degree);
    }
    std::sort(out.begin(), out.end(), std::greater<>{});
    return out;
}

}  // namespace mm::net
