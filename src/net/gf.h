// gf.h - finite (Galois) fields GF(p^m) of small order.
//
// Section 3.4 of the paper uses projective planes PG(2,k), which exist for
// every prime power k.  The paper does not say how to build them; we build
// them from first principles over GF(q).  Elements are represented as the
// integers 0..q-1; for extension fields the integer is the base-p digit
// encoding of a polynomial over GF(p) reduced modulo a monic irreducible
// polynomial of degree m (found by exhaustive search, which is cheap for the
// small orders match-making networks need).
#pragma once

#include <optional>
#include <vector>

namespace mm::net {

// True if q = p^m for some prime p, m >= 1; on success reports p and m.
[[nodiscard]] bool is_prime_power(int q, int* prime = nullptr, int* exponent = nullptr);

class finite_field {
public:
    // Constructs GF(q).  Throws std::invalid_argument unless q is a prime
    // power in [2, 4096].
    explicit finite_field(int q);

    [[nodiscard]] int order() const noexcept { return q_; }
    [[nodiscard]] int characteristic() const noexcept { return p_; }
    [[nodiscard]] int degree() const noexcept { return m_; }

    [[nodiscard]] int add(int a, int b) const;
    [[nodiscard]] int sub(int a, int b) const;
    [[nodiscard]] int neg(int a) const;
    [[nodiscard]] int mul(int a, int b) const;
    // Multiplicative inverse; precondition a != 0.
    [[nodiscard]] int inv(int a) const;
    // a / b; precondition b != 0.
    [[nodiscard]] int div(int a, int b) const;
    [[nodiscard]] int pow(int a, long long e) const;

    // The monic irreducible polynomial used for reduction, as base-p digits
    // (index = power of x), empty for prime fields.
    [[nodiscard]] const std::vector<int>& modulus() const noexcept { return modulus_; }

private:
    int q_ = 0;
    int p_ = 0;
    int m_ = 0;
    std::vector<int> modulus_;        // degree m+1 coefficients over GF(p)
    std::vector<int> mul_table_;      // q*q multiplication table
    std::vector<int> inv_table_;      // q entries (inv_table_[0] unused)

    [[nodiscard]] int mul_poly(int a, int b) const;
    void check_element(int a) const;
};

}  // namespace mm::net
