// random_graphs.h - random and UUCP-like network generators.
//
// Section 3.6 describes "existing networks" (UUCPnet, ARPAnet): roughly a
// tree with a pronounced degree hierarchy toward a core, plus a number of
// extra edges between geographically near nodes.  These generators produce
// synthetic networks with exactly those characteristics, so that the
// path-to-root strategy and the paper's degree table can be exercised
// without the (long gone) August 1984 UUCP map.
#pragma once

#include <cstdint>
#include <vector>

#include "net/graph.h"

namespace mm::net {

// Uniformly random labeled tree (random parent among previous nodes).
[[nodiscard]] graph make_random_tree(node_id n, std::uint64_t seed);

// Preferential-attachment tree: node v attaches to an earlier node chosen
// with probability proportional to degree + 1.  Produces the heavy-tailed
// degree hierarchy (backbone / feeder / terminal sites) seen in UUCPnet.
[[nodiscard]] graph make_preferential_tree(node_id n, std::uint64_t seed);

// UUCP-like network: a preferential-attachment tree plus `extra_edges`
// shortcuts between random nodes ("the number of extra edges thrown in [is]
// not more than the number of nodes in a spanning tree").
[[nodiscard]] graph make_uucp_like(node_id n, node_id extra_edges, std::uint64_t seed);

// Parent array of a preferential-attachment tree (parent[0] == invalid_node);
// useful when the tree structure itself is needed, not just the graph.
[[nodiscard]] std::vector<node_id> make_preferential_tree_parents(node_id n, std::uint64_t seed);

// Connected Erdos-Renyi-style graph: a random tree plus `extra_edges`
// uniform random non-parallel edges.
[[nodiscard]] graph make_random_connected(node_id n, node_id extra_edges, std::uint64_t seed);

// Number of nodes of each degree, indexed by degree (the shape of the
// paper's Section 3.6 table).
[[nodiscard]] std::vector<int> degree_histogram(const graph& g);

}  // namespace mm::net
