// routing.h - shortest-path routing tables and multicast cost accounting.
//
// The paper assumes "each node has a table containing the names of all other
// nodes together with the minimum cost to reach them and the neighbor at
// which the minimum cost path starts" (Section 3).  routing_table is exactly
// that: hop-count distances plus next-hop neighbors, built by breadth-first
// search.
//
// Storage contract (the part the paper hand-waves and a 10^6-node simulation
// cannot): a full table is n rows of n entries.  Rows are therefore built
// lazily per root on first use AND the set of materialized rows is bounded
// by an LRU cap (set_row_cache_limit; the default scales with the node count
// so the cache stays within a fixed memory budget).  Evicted rows are
// rebuilt transparently on their next use - answers never change, only the
// rebuild cost - so "computed lazily" alone no longer describes the
// lifecycle: rows come *and go*.
//
// Query fast paths on top of the row cache:
//  * distance(a, b) answers from whichever endpoint's row is resident and
//    otherwise runs a bidirectional BFS that touches only the neighborhood
//    between the endpoints and materializes nothing.
//  * path(a, b) walks the resident endpoint row when there is one and only
//    builds (and caches) the row rooted at `a` when neither is resident.
//    Either way it returns one deterministic shortest path; which of the
//    equally-short paths you get depends on cache residency, so two runs
//    issuing the same call sequence from construction see the same paths
//    (everything here is deterministic), but call-order changes can legally
//    change tie-breaks.  Hop counts and distances are tie-free.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <span>
#include <vector>

#include "net/graph.h"

namespace mm::net {

class routing_table {
public:
    // The graph must stay alive for the lifetime of the table and must be
    // connected (checked lazily, on first use of an unreachable pair).
    explicit routing_table(const graph& g);

    // --- dynamic membership -------------------------------------------------
    // The table tracks the graph's structure generation.  Every public query
    // first replays the graph's change log since the last sync and repairs
    // the row cache *incrementally*: a membership event invalidates only the
    // rows whose cached BFS tree actually crosses a changed edge, and a
    // pendant join (new degree-1 node) is leaf-patched into resident rows
    // without any rebuild at all.  The repair rules are deliberately exact:
    // a row that survives a sync is bit-identical to the row a fresh BFS
    // would build on the current graph, which is what keeps path() a pure
    // function of its endpoints (see source-rooted mode below) across
    // membership churn.  When the change log window has been exceeded the
    // table falls back to a full reset.

    // Minimum number of hops between two nodes; 0 for from == to.
    [[nodiscard]] int distance(node_id from, node_id to) const;

    // The neighbor of `from` on a shortest path to `to`, read from the BFS
    // tree rooted at `to` (materializes that row).  Precondition: from != to.
    [[nodiscard]] node_id next_hop(node_id from, node_id to) const;

    // Full node sequence from -> ... -> to (inclusive on both ends); one
    // shortest path, chosen deterministically as documented above.  This is
    // what the simulator routes every deterministic message along.
    [[nodiscard]] std::vector<node_id> path(node_id from, node_id to) const;

    // Message passes needed to deliver one message from `source` to every
    // node in `targets`, when messages are forwarded over the union of
    // shortest paths (a subtree of the BFS tree of `source`).  This models
    // the paper's "broadcast the messages over spanning trees in these
    // subgraphs": each tree edge carries the message once.
    [[nodiscard]] std::int64_t multicast_cost(node_id source,
                                              std::span<const node_id> targets) const;

    // Sum of point-to-point distances source -> target; the cost when each
    // posting/query is sent as an independent unicast message.
    [[nodiscard]] std::int64_t unicast_cost(node_id source,
                                            std::span<const node_id> targets) const;

    // --- canonical (source-rooted) paths ------------------------------------
    // With this mode on, path(a, b) always walks the BFS tree rooted at `a`
    // (building that row if it is not resident) instead of serving from
    // whichever endpoint row happens to be cached.  The returned path then
    // is a pure function of (a, b) - independent of call order, cache
    // residency, and of which of several routing tables answers.  The
    // parallel simulator turns this on for all of its tables so that every
    // worker computes the exact same routes the serial engine computes;
    // distance() needs no such mode (hop counts are tie-free).
    void set_source_rooted_paths(bool on) noexcept { source_rooted_paths_ = on; }
    [[nodiscard]] bool source_rooted_paths() const noexcept { return source_rooted_paths_; }

    // --- row-cache bound ---------------------------------------------------
    // At most `limit` BFS rows stay materialized (least recently used rows
    // are evicted); 0 means unbounded.  The constructor picks a default that
    // keeps the cache under ~256 MiB: max(8, 2^25 / node_count) rows.
    void set_row_cache_limit(std::size_t limit);
    [[nodiscard]] std::size_t row_cache_limit() const noexcept { return limit_; }
    // Rows currently resident / total BFS row builds so far (a build counter
    // that keeps climbing under a too-small cap is the thrash signal).
    [[nodiscard]] std::size_t materialized_rows() const noexcept { return lru_.size(); }
    [[nodiscard]] std::int64_t row_builds() const noexcept { return row_builds_; }
    // Rows dropped by incremental repair (membership churn), not by LRU
    // eviction.  `row_builds() + row_invalidations()` staying o(n) across a
    // join is the repair-locality signal bench_e19_churn measures.
    [[nodiscard]] std::int64_t row_invalidations() const noexcept { return row_invalidations_; }
    // Generation of graph structure the row cache currently reflects.
    [[nodiscard]] std::int64_t synced_generation() const noexcept { return synced_gen_; }

    [[nodiscard]] const graph& network() const noexcept { return *graph_; }

private:
    // One row per *root*: dist[v] and the BFS parent of v in the tree rooted
    // at the root.  Read as "next hop from v toward the root".
    struct row {
        std::vector<int> dist;
        std::vector<node_id> toward;
        std::list<node_id>::iterator lru_pos;
    };

    const graph* graph_;
    mutable std::vector<std::unique_ptr<row>> rows_;
    mutable std::list<node_id> lru_;  // front = most recently used root
    std::size_t limit_ = 0;
    bool source_rooted_paths_ = false;
    mutable std::int64_t row_builds_ = 0;
    mutable std::int64_t row_invalidations_ = 0;
    mutable std::int64_t synced_gen_ = 0;
    mutable std::vector<change> delta_;  // scratch for sync()

    // Scratch for bidirectional BFS, epoch-stamped so queries do not pay an
    // O(n) clear.  Index 0 = the `from` side, 1 = the `to` side.
    mutable std::vector<std::int64_t> seen_epoch_[2];
    mutable std::vector<int> seen_dist_[2];
    mutable std::vector<node_id> frontier_[2];
    mutable std::int64_t bfs_epoch_ = 0;

    const row& row_for(node_id root) const;
    [[nodiscard]] const row* resident_row(node_id root) const noexcept;
    void touch(row& r) const;
    // Replays the graph's change log since synced_gen_ (see class comment).
    void sync() const;
    void apply_change(const change& c) const;
    void drop_row(node_id root) const;
    // Exact hop distance via bidirectional BFS; materializes nothing.
    // Returns -1 when the nodes are not connected.
    [[nodiscard]] int bidirectional_distance(node_id from, node_id to) const;
};

}  // namespace mm::net
