// routing.h - shortest-path routing tables and multicast cost accounting.
//
// The paper assumes "each node has a table containing the names of all other
// nodes together with the minimum cost to reach them and the neighbor at
// which the minimum cost path starts" (Section 3).  routing_table is exactly
// that: hop-count distances plus next-hop neighbors, built by breadth-first
// search.  Rows are computed lazily per destination so that large networks
// only pay for the destinations actually routed to.
#pragma once

#include <memory>
#include <vector>

#include "net/graph.h"

namespace mm::net {

class routing_table {
public:
    // The graph must stay alive for the lifetime of the table and must be
    // connected (checked lazily, on first use of an unreachable pair).
    explicit routing_table(const graph& g);

    // Minimum number of hops between two nodes; 0 for from == to.
    [[nodiscard]] int distance(node_id from, node_id to) const;

    // The neighbor of `from` on a shortest path to `to`.
    // Precondition: from != to.
    [[nodiscard]] node_id next_hop(node_id from, node_id to) const;

    // Full node sequence from -> ... -> to (inclusive on both ends).
    [[nodiscard]] std::vector<node_id> path(node_id from, node_id to) const;

    // Message passes needed to deliver one message from `source` to every
    // node in `targets`, when messages are forwarded over the union of
    // shortest paths (a subtree of the BFS tree of `source`).  This models
    // the paper's "broadcast the messages over spanning trees in these
    // subgraphs": each tree edge carries the message once.
    [[nodiscard]] std::int64_t multicast_cost(node_id source,
                                              std::span<const node_id> targets) const;

    // Sum of point-to-point distances source -> target; the cost when each
    // posting/query is sent as an independent unicast message.
    [[nodiscard]] std::int64_t unicast_cost(node_id source,
                                            std::span<const node_id> targets) const;

    [[nodiscard]] const graph& network() const noexcept { return *graph_; }

private:
    // One row per *destination*: dist[v] and next-hop-from-v toward the
    // destination (== BFS parent of v in the tree rooted at the destination).
    struct row {
        std::vector<int> dist;
        std::vector<node_id> toward;
    };

    const graph* graph_;
    mutable std::vector<std::unique_ptr<row>> rows_;

    const row& row_for(node_id destination) const;
};

}  // namespace mm::net
