#include "net/shard_map.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "net/partition.h"

namespace mm::net {

shard_map::shard_map(std::vector<int> owner, int shard_count)
    : owner_{std::move(owner)}, shard_count_{shard_count} {
    if (shard_count_ < 1) throw std::invalid_argument{"shard_map: shard_count < 1"};
    sizes_.assign(static_cast<std::size_t>(shard_count_), 0);
    for (const int s : owner_) {
        if (s < 0 || s >= shard_count_)
            throw std::invalid_argument{"shard_map: owner id out of range"};
        ++sizes_[static_cast<std::size_t>(s)];
    }
}

int shard_map::absorb(const graph& g, node_id v) {
    if (!g.valid_node(v)) throw std::out_of_range{"shard_map::absorb: bad node"};
    const auto idx = static_cast<std::size_t>(v);
    if (idx > owner_.size())
        throw std::invalid_argument{"shard_map::absorb: node id beyond the next fresh id"};
    if (idx == owner_.size()) owner_.push_back(0);
    // A default-constructed map has no size accounting yet.
    if (sizes_.size() != static_cast<std::size_t>(shard_count_))
        sizes_.resize(static_cast<std::size_t>(shard_count_), 0);

    // Locality rule: count v's present neighbors per shard.
    std::vector<node_id> votes(static_cast<std::size_t>(shard_count_), 0);
    for (const node_id w : g.neighbors(v)) {
        const auto wi = static_cast<std::size_t>(w);
        if (wi < owner_.size() && wi != idx) ++votes[static_cast<std::size_t>(owner_[wi])];
    }
    int chosen = 0;
    for (int s = 1; s < shard_count_; ++s)
        if (votes[static_cast<std::size_t>(s)] > votes[static_cast<std::size_t>(chosen)])
            chosen = s;

    // Re-balance rule: no neighbors to follow, or the neighbor-majority
    // shard already carries more than twice the mean live load -> lightest
    // shard (ties to the lowest id), the LPT step.
    const auto live = std::accumulate(sizes_.begin(), sizes_.end(), std::int64_t{0});
    const bool overloaded =
        static_cast<std::int64_t>(sizes_[static_cast<std::size_t>(chosen)]) * shard_count_ >
        2 * (live + 1);
    if (votes[static_cast<std::size_t>(chosen)] == 0 || overloaded) {
        chosen = static_cast<int>(std::min_element(sizes_.begin(), sizes_.end()) -
                                  sizes_.begin());
    }
    owner_[idx] = chosen;
    ++sizes_[static_cast<std::size_t>(chosen)];
    return chosen;
}

void shard_map::release(node_id v) {
    const auto idx = static_cast<std::size_t>(v);
    if (v < 0 || idx >= owner_.size()) throw std::out_of_range{"shard_map::release: bad node"};
    auto& size = sizes_[static_cast<std::size_t>(owner_[idx])];
    if (size <= 0) throw std::logic_error{"shard_map::release: shard already empty"};
    --size;
}

shard_map make_shard_map(const graph& g, int shards) {
    const node_id n = g.node_count();
    if (n <= 0) throw std::invalid_argument{"make_shard_map: empty graph"};
    if (g.live_node_count() != n)
        throw std::invalid_argument{
            "make_shard_map: graph has removed nodes; build the map before membership "
            "churn and grow it with absorb()/release()"};
    shards = std::clamp(shards, 1, static_cast<int>(n));
    if (shards == 1) return shard_map{std::vector<int>(static_cast<std::size_t>(n), 0), 1};

    // Carve into several connected parts per shard; partition_connected
    // caps parts at 2 * target, so target n/(4*shards) keeps every part at
    // or below ~n/(2*shards) and the packing below can balance.
    const int target = std::max(1, static_cast<int>(n) / (4 * shards));
    const graph_partition parts = partition_connected(g, target);

    // LPT bin-packing: largest part first onto the lightest shard.  Ties on
    // part size break by part index and ties on shard load by shard index,
    // so the result is deterministic.
    std::vector<int> order(static_cast<std::size_t>(parts.part_count()));
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](int a, int b) {
        const auto sa = parts.parts[static_cast<std::size_t>(a)].size();
        const auto sb = parts.parts[static_cast<std::size_t>(b)].size();
        return sa != sb ? sa > sb : a < b;
    });

    std::vector<int> owner(static_cast<std::size_t>(n), 0);
    std::vector<std::size_t> load(static_cast<std::size_t>(shards), 0);
    for (const int p : order) {
        const auto lightest = static_cast<int>(
            std::min_element(load.begin(), load.end()) - load.begin());
        for (const node_id v : parts.parts[static_cast<std::size_t>(p)])
            owner[static_cast<std::size_t>(v)] = lightest;
        load[static_cast<std::size_t>(lightest)] +=
            parts.parts[static_cast<std::size_t>(p)].size();
    }
    return shard_map{std::move(owner), shards};
}

}  // namespace mm::net
