#include "net/shard_map.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "net/partition.h"

namespace mm::net {

shard_map::shard_map(std::vector<int> owner, int shard_count)
    : owner_{std::move(owner)}, shard_count_{shard_count} {
    if (shard_count_ < 1) throw std::invalid_argument{"shard_map: shard_count < 1"};
    sizes_.assign(static_cast<std::size_t>(shard_count_), 0);
    for (const int s : owner_) {
        if (s < 0 || s >= shard_count_)
            throw std::invalid_argument{"shard_map: owner id out of range"};
        ++sizes_[static_cast<std::size_t>(s)];
    }
}

shard_map make_shard_map(const graph& g, int shards) {
    const node_id n = g.node_count();
    if (n <= 0) throw std::invalid_argument{"make_shard_map: empty graph"};
    shards = std::clamp(shards, 1, static_cast<int>(n));
    if (shards == 1) return shard_map{std::vector<int>(static_cast<std::size_t>(n), 0), 1};

    // Carve into several connected parts per shard; partition_connected
    // caps parts at 2 * target, so target n/(4*shards) keeps every part at
    // or below ~n/(2*shards) and the packing below can balance.
    const int target = std::max(1, static_cast<int>(n) / (4 * shards));
    const graph_partition parts = partition_connected(g, target);

    // LPT bin-packing: largest part first onto the lightest shard.  Ties on
    // part size break by part index and ties on shard load by shard index,
    // so the result is deterministic.
    std::vector<int> order(static_cast<std::size_t>(parts.part_count()));
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](int a, int b) {
        const auto sa = parts.parts[static_cast<std::size_t>(a)].size();
        const auto sb = parts.parts[static_cast<std::size_t>(b)].size();
        return sa != sb ? sa > sb : a < b;
    });

    std::vector<int> owner(static_cast<std::size_t>(n), 0);
    std::vector<std::size_t> load(static_cast<std::size_t>(shards), 0);
    for (const int p : order) {
        const auto lightest = static_cast<int>(
            std::min_element(load.begin(), load.end()) - load.begin());
        for (const node_id v : parts.parts[static_cast<std::size_t>(p)])
            owner[static_cast<std::size_t>(v)] = lightest;
        load[static_cast<std::size_t>(lightest)] +=
            parts.parts[static_cast<std::size_t>(p)].size();
    }
    return shard_map{std::move(owner), shards};
}

}  // namespace mm::net
