// quickstart - the 60-second tour of the library.
//
// Build a network, pick a match-making strategy, run a name service on the
// simulator: register a server under a port, locate it from a client, and
// inspect the costs the paper reasons about (message passes, cache sizes).
#include <iostream>
#include <vector>

#include "core/lower_bound.h"
#include "core/rendezvous_matrix.h"
#include "net/topologies.h"
#include "runtime/name_service.h"
#include "strategies/grid.h"

int main() {
    using namespace mm;

    // 1. A network: a 4x4 Manhattan grid (Section 3.1 of the paper).
    const auto network = net::make_grid(4, 4);
    std::cout << "network: " << network.summary() << "\n";

    // 2. A strategy: servers post along their row, clients query their
    //    column; the crossing node is the rendezvous.
    const strategies::manhattan_strategy strategy{4, 4};

    // 3. The theory: the rendezvous matrix and the paper's lower bound.
    const auto matrix = core::rendezvous_matrix::from_strategy(strategy);
    const auto bounds = core::check_bounds(matrix);
    std::cout << "strategy " << strategy.name() << ": m(n) = " << bounds.average_messages
              << " against lower bound " << bounds.message_bound
              << " (optimal: " << (bounds.optimality_ratio() <= 1.0001 ? "yes" : "no")
              << ")\n\n";
    std::cout << "rendezvous matrix:\n" << matrix.to_string() << "\n";

    // 4. The practice: run it.  A file server lives at node 5; any client
    //    can find it without knowing where it is.  Policy (TTLs, refresh,
    //    caching, relaying) is declared up front in the options struct.
    sim::simulator sim{network};
    runtime::name_service ns{sim, strategy, {.entry_ttl = 500, .client_caching = true}};
    const auto port = core::port_of("file-server");
    ns.register_server(port, 5);

    const auto result = ns.locate(port, 10);
    std::cout << "locate(file-server) from node 10: found at node " << result.where << " in "
              << result.latency << " ticks, " << result.message_passes
              << " message passes, querying " << result.nodes_queried << " nodes\n";

    // 5. Concurrency: the API is asynchronous underneath.  begin_locate
    //    returns a handle immediately; any number of operations share one
    //    simulator run, each with its own latency/message-pass accounting.
    std::vector<runtime::op_id> ops;
    for (net::node_id client = 0; client < 16; ++client)
        ops.push_back(ns.begin_locate_fresh(port, client));
    ns.run_until_complete(ops);
    std::int64_t total_hops = 0;
    for (const auto id : ops) total_hops += ns.poll(id)->message_passes;
    std::cout << ops.size() << " concurrent locates resolved in one run, "
              << total_hops << " message passes total\n";

    // 6. Mobility: the server migrates; stale cache entries lose by
    //    timestamp and the next fresh locate sees the new address.
    ns.migrate_server(port, 5, 15);
    std::cout << "after migration, locate finds node " << ns.locate_fresh(port, 10).where
              << "\n";
    return 0;
}
