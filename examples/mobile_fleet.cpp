// mobile_fleet - the paper's opening scenario as a running system.
//
// "Processes are not tied to fixed processors but run on processors taken
// from a pool...  Processors are released when a process dies, migrates or
// when the process crashes."  A fleet of worker services churns across a
// hypercube: workers migrate, crash, and respawn, while clients keep
// locating them.  Soft state does all the cleanup: posts carry TTLs,
// live hosts re-post on a timer, and crashed workers' bindings simply age
// out.  No operator, no tombstones, no global view.
#include <iomanip>
#include <iostream>

#include "net/topologies.h"
#include "runtime/name_service.h"
#include "sim/rng.h"
#include "strategies/cube.h"

int main() {
    using namespace mm;
    constexpr int d = 5;  // 32 processors
    const auto network = net::make_hypercube(d);
    sim::simulator sim{network};
    sim.set_randomized_routing(5);
    const strategies::hypercube_strategy strategy{d};
    runtime::name_service ns{sim, strategy, {.entry_ttl = 120, .refresh_period = 40}};

    sim::rng random{2026};
    constexpr int fleet_size = 6;
    std::vector<net::node_id> worker_at(fleet_size);
    std::vector<core::port_id> worker_port(fleet_size);
    for (int w = 0; w < fleet_size; ++w) {
        worker_port[static_cast<std::size_t>(w)] = core::port_of("worker-" + std::to_string(w));
        worker_at[static_cast<std::size_t>(w)] =
            static_cast<net::node_id>(random.uniform(0, 31));
        ns.register_server(worker_port[static_cast<std::size_t>(w)],
                           worker_at[static_cast<std::size_t>(w)]);
    }

    std::int64_t locates = 0;
    std::int64_t hits = 0;
    std::int64_t misses_during_downtime = 0;
    int crashed_worker = -1;
    sim::time_point crash_until = 0;

    std::cout << "epoch | event                          | locate hits\n";
    std::cout << "------+--------------------------------+------------\n";
    for (int epoch = 1; epoch <= 30; ++epoch) {
        std::string event = "steady state";

        // Churn: every few epochs something happens to a random worker.
        if (epoch % 3 == 0) {
            const int w = static_cast<int>(random.uniform(0, fleet_size - 1));
            auto& at = worker_at[static_cast<std::size_t>(w)];
            const auto port = worker_port[static_cast<std::size_t>(w)];
            if (epoch % 9 == 0 && crashed_worker < 0) {
                // Crash: host dies with the worker; nobody deregisters.
                ns.crash_node(at);
                crashed_worker = w;
                crash_until = sim.now() + 400;
                event = "worker-" + std::to_string(w) + " CRASHED at node " +
                        std::to_string(at);
            } else if (w != crashed_worker) {
                // Migration to a fresh processor from the pool.
                net::node_id fresh = at;
                while (fresh == at || sim.crashed(fresh))
                    fresh = static_cast<net::node_id>(random.uniform(0, 31));
                ns.migrate_server(port, at, fresh);
                event = "worker-" + std::to_string(w) + " migrated " + std::to_string(at) +
                        " -> " + std::to_string(fresh);
                at = fresh;
            }
        }
        // Recovery: the crashed processor comes back; the worker respawns.
        if (crashed_worker >= 0 && sim.now() >= crash_until) {
            auto& at = worker_at[static_cast<std::size_t>(crashed_worker)];
            ns.recover_node(at);
            ns.register_server(worker_port[static_cast<std::size_t>(crashed_worker)], at);
            event = "worker-" + std::to_string(crashed_worker) + " respawned at node " +
                    std::to_string(at);
            crashed_worker = -1;
        }

        // A burst of client work against random workers.
        int epoch_hits = 0;
        for (int q = 0; q < 8; ++q) {
            const int w = static_cast<int>(random.uniform(0, fleet_size - 1));
            net::node_id client = static_cast<net::node_id>(random.uniform(0, 31));
            while (sim.crashed(client))
                client = static_cast<net::node_id>(random.uniform(0, 31));
            const auto result = ns.locate(worker_port[static_cast<std::size_t>(w)], client);
            ++locates;
            if (result.found) {
                ++hits;
                ++epoch_hits;
            } else if (w == crashed_worker) {
                ++misses_during_downtime;  // expected: the worker is dead
            }
        }
        ns.run_for(60);

        std::cout << std::setw(5) << epoch << " | " << std::left << std::setw(30) << event
                  << std::right << " | " << epoch_hits << "/8\n";
    }

    std::cout << "\nfleet summary: " << hits << "/" << locates << " locates answered; "
              << misses_during_downtime << " misses hit the crashed worker's port while it\n"
              << "was down (its stale bindings aged out via TTL - exactly the intended\n"
              << "behavior, no tombstone protocol needed).\n"
              << "network counters: " << sim.stats().get(sim::counter_messages_sent)
              << " messages, " << sim.stats().get(sim::counter_hops) << " hops, peak cache "
              << ns.max_cache_entries() << " entries.\n";
    return 0;
}
