// strategy_explorer - a command-line audit tool for match-making
// strategies.
//
//   strategy_explorer <strategy> <n> [options]
//
// Prints the strategy's certificate (totality, cost vs the Proposition 2
// bound, Section 2.4 fault tolerance, cache load) and, for small n, the
// rendezvous matrix itself.  Useful for eyeballing a deployment before
// committing to it.
//
//   strategies: broadcast | sweep | central | flood | checkerboard |
//               manhattan | hypercube | ccc | projective | hash
//   options:    --width W --redundancy R --matrix
//
// Examples:
//   strategy_explorer checkerboard 16 --matrix
//   strategy_explorer checkerboard 64 --redundancy 2
//   strategy_explorer hypercube 6
//   strategy_explorer projective 7
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>

#include "core/certify.h"
#include "strategies/basic.h"
#include "strategies/checkerboard.h"
#include "strategies/cube.h"
#include "strategies/grid.h"
#include "strategies/hash_locate.h"
#include "strategies/projective.h"

namespace {

using namespace mm;

int usage() {
    std::cerr << "usage: strategy_explorer <broadcast|sweep|central|flood|checkerboard|"
                 "manhattan|hypercube|ccc|projective|hash> <n> [--width W] [--redundancy R] "
                 "[--matrix]\n"
              << "  n is the node count (hypercube/ccc: the dimension d; projective: the "
                 "order k; manhattan: the side)\n";
    return 2;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 3) return usage();
    const std::string kind = argv[1];
    const int n = std::atoi(argv[2]);
    int width = 0;
    int redundancy = 1;
    bool show_matrix = false;
    for (int a = 3; a < argc; ++a) {
        const std::string opt = argv[a];
        if (opt == "--matrix") {
            show_matrix = true;
        } else if (opt == "--width" && a + 1 < argc) {
            width = std::atoi(argv[++a]);
        } else if (opt == "--redundancy" && a + 1 < argc) {
            redundancy = std::atoi(argv[++a]);
        } else {
            return usage();
        }
    }

    std::unique_ptr<core::locate_strategy> strategy;
    try {
        if (kind == "broadcast") {
            strategy = std::make_unique<strategies::broadcast_strategy>(n);
        } else if (kind == "sweep") {
            strategy = std::make_unique<strategies::sweep_strategy>(n);
        } else if (kind == "central") {
            strategy = std::make_unique<strategies::central_strategy>(n, 0);
        } else if (kind == "flood") {
            strategy = std::make_unique<strategies::flood_strategy>(n);
        } else if (kind == "checkerboard") {
            strategy = std::make_unique<strategies::checkerboard_strategy>(n, width, redundancy);
        } else if (kind == "manhattan") {
            strategy = std::make_unique<strategies::manhattan_strategy>(n, n);
        } else if (kind == "hypercube") {
            strategy = std::make_unique<strategies::hypercube_strategy>(n, width > 0 ? width : -1);
        } else if (kind == "ccc") {
            strategy = std::make_unique<strategies::ccc_strategy>(n);
        } else if (kind == "projective") {
            strategy = std::make_unique<strategies::projective_strategy>(n, 0, 0, redundancy);
        } else if (kind == "hash") {
            strategy = std::make_unique<strategies::hash_locate_strategy>(n, redundancy);
        } else {
            return usage();
        }

        const auto cert = core::certify(*strategy);
        std::cout << cert.to_string() << "\n";
        if (!cert.total)
            std::cout << "WARNING: not total - some client/server pairs can never match!\n";

        if (show_matrix) {
            if (strategy->node_count() > 32) {
                std::cout << "(matrix suppressed: n > 32)\n";
            } else {
                std::cout << "\nrendezvous matrix (servers = rows, clients = columns):\n"
                          << core::rendezvous_matrix::from_strategy(*strategy).to_string();
            }
        }
    } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }
    return 0;
}
