// fault_tolerance - Section 2.4's two robustness criteria, live.
//
// Criterion 1 (distributed): no set of node crashes that leaves a surviving
// network can stop surviving clients from locating surviving servers, once
// servers re-post.  Criterion 2 (redundant): with #(P n Q) >= f+1, locates
// keep working under f faults with no re-posting at all.  The demo breaks a
// singleton-rendezvous strategy with one well-aimed crash, shows the 3-d
// mesh strategy absorbing two, and exercises crash -> cache wipe ->
// recovery -> re-post.
#include <iostream>

#include "core/strategy.h"
#include "net/topologies.h"
#include "runtime/name_service.h"
#include "strategies/checkerboard.h"
#include "strategies/grid.h"

int main() {
    using namespace mm;
    const auto port = core::port_of("ledger");

    std::cout << "--- One aimed crash vs a singleton-rendezvous strategy ---\n";
    {
        const auto g = net::make_complete(16);
        sim::simulator sim{g};
        const strategies::checkerboard_strategy strategy{16};
        runtime::name_service ns{sim, strategy};
        ns.register_server(port, 5);

        const auto rendezvous = core::intersect_sets(strategy.post_set(5),
                                                     strategy.query_set(2));
        std::cout << "server 5 / client 2 rendezvous node: " << rendezvous.front() << "\n";
        std::cout << "locate before crash: "
                  << (ns.locate(port, 2).found ? "found" : "lost") << "\n";
        ns.crash_node(rendezvous.front());
        std::cout << "locate after crashing it: "
                  << (ns.locate(port, 2).found ? "found" : "lost")
                  << "  (the checkerboard is distributed but not redundant)\n";

        // Criterion 1 in action: the strategy is distributed, so other
        // pairs keep working through the crash; and once the node recovers
        // and the surviving server re-posts, even this pair is healed.
        std::cout << "a different client (12) still succeeds: "
                  << (ns.locate(port, 12).found ? "yes" : "no") << "\n";
        ns.recover_node(rendezvous.front());
        ns.repost_all();
        std::cout << "after recovery + re-post, client 2: "
                  << (ns.locate(port, 2).found ? "found" : "lost") << "\n";
    }

    std::cout << "\n--- f+1 redundancy on the 3-dimensional mesh ---\n";
    {
        const net::mesh_shape shape{{4, 4, 4}};
        const auto g = net::make_mesh(shape);
        sim::simulator sim{g};
        const strategies::mesh_strategy strategy{shape};
        runtime::name_service ns{sim, strategy};
        ns.register_server(port, 0);

        const auto rendezvous = core::intersect_sets(strategy.post_set(0),
                                                     strategy.query_set(63));
        std::cout << "rendezvous set size #(P n Q) = " << rendezvous.size()
                  << " (tolerates f = " << rendezvous.size() - 1 << " faults in place)\n";
        for (std::size_t f = 0; f + 1 < rendezvous.size(); ++f) {
            ns.crash_node(rendezvous[f]);
            std::cout << "crashed " << f + 1 << " rendezvous node(s): locate "
                      << (ns.locate(port, 63).found ? "still found" : "LOST") << "\n";
        }
        ns.crash_node(rendezvous.back());
        std::cout << "crashed all " << rendezvous.size() << ": locate "
                  << (ns.locate(port, 63).found ? "found" : "lost, as the criterion predicts")
                  << "\n";
    }

    std::cout << "\n--- Crash wipes soft state; re-posting heals the directory ---\n";
    {
        const auto g = net::make_grid(5, 5);
        sim::simulator sim{g};
        const strategies::manhattan_strategy strategy{5, 5};
        runtime::name_service ns{sim, strategy};
        ns.register_server(port, 7);
        std::cout << "cached entries network-wide after registration: "
                  << ns.total_cache_entries() << "\n";
        // Crash the server's row - its entire post set - except the server's
        // own host, which survives.
        for (const net::node_id v : strategy.post_set(7))
            if (v != 7) ns.crash_node(v);
        std::cout << "after crashing the rest of the server's row, entries: "
                  << ns.total_cache_entries() << ", locate from 24: "
                  << (ns.locate(port, 24).found ? "found" : "lost") << "\n";
        for (const net::node_id v : strategy.post_set(7)) ns.recover_node(v);
        std::cout << "row recovered, but caches came back empty (fail-stop): locate "
                  << (ns.locate(port, 24).found ? "found" : "still lost") << "\n";
        ns.repost_all();
        std::cout << "after the surviving server re-posts: locate "
                  << (ns.locate(port, 24).found ? "found" : "lost") << "\n";
    }
    return 0;
}
