// catering_service - the paper's Section 1.1 story, executable.
//
// "Suppose you want to give a party in your Silicon Valley home... you do
// not know the address or telephone number of such a service."  The caterer
// (a mobile server) comes and goes; the host (a client) tries the paper's
// four options: broadcasting (mail everybody), the Yellow Pages (a
// centralized name server, which can crash), newspapers (a truly
// distributed name server), and asking friends (hash locate on a social
// hash).  The caterer itself turns client when it rents a car - "everybody
// can be server, client or both".
#include <iostream>

#include "net/topologies.h"
#include "runtime/name_service.h"
#include "strategies/basic.h"
#include "strategies/checkerboard.h"
#include "strategies/hash_locate.h"

namespace {

using namespace mm;

void tell(const std::string& who, const std::string& what) {
    std::cout << "[" << who << "] " << what << "\n";
}

void try_locate(runtime::name_service& ns, const std::string& label, core::port_id port,
                net::node_id client) {
    const auto result = ns.locate(port, client);
    if (result.found) {
        tell("host", "found a caterer via " + label + " at house " +
                         std::to_string(result.where) + " (" +
                         std::to_string(result.message_passes) + " message passes, " +
                         std::to_string(result.nodes_queried) + " nodes asked)");
    } else {
        tell("host", "no caterer found via " + label + " - " +
                         std::to_string(result.message_passes) + " message passes wasted");
    }
}

}  // namespace

int main() {
    constexpr net::node_id town_size = 36;  // Silicon Valley, abridged
    const auto town = net::make_complete(town_size);
    const auto catering = core::port_of("catering-service");
    const auto car_rental = core::port_of("car-rental");
    const net::node_id host = 0;
    const net::node_id caterer = 17;

    std::cout << "--- Broadcasting: mail everybody in town ---\n";
    {
        sim::simulator sim{town};
        const strategies::broadcast_strategy everybody{town_size};
        runtime::name_service ns{sim, everybody};
        ns.register_server(catering, caterer);
        try_locate(ns, "broadcast", catering, host);
        tell("narrator", "works, but " + std::to_string(town_size) + " letters per party is rude");
    }

    std::cout << "\n--- Yellow Pages: the centralized name server ---\n";
    {
        sim::simulator sim{town};
        const strategies::central_strategy yellow_pages{town_size, 1};
        runtime::name_service ns{sim, yellow_pages};
        ns.register_server(catering, caterer);
        try_locate(ns, "Yellow Pages", catering, host);
        tell("narrator", "cheapest possible (m = 2)... until the YP office burns down:");
        ns.crash_node(1);
        try_locate(ns, "Yellow Pages", catering, host);
        tell("narrator", "\"if the YP company crashes... society grinds to a halt\"");
    }

    std::cout << "\n--- Newspapers: the truly distributed name server ---\n";
    {
        sim::simulator sim{town};
        const strategies::checkerboard_strategy newspapers{town_size};
        runtime::name_service ns{sim, newspapers};
        ns.register_server(catering, caterer);
        try_locate(ns, "newspapers", catering, host);
        tell("narrator", "one paper folding changes nothing for most readers:");
        ns.crash_node(2);  // not the host/caterer rendezvous for this pair
        try_locate(ns, "newspapers", catering, host);

        tell("caterer", "the old address closes; reopening across town...");
        ns.migrate_server(catering, caterer, 30);
        try_locate(ns, "newspapers", catering, host);

        tell("caterer", "now I need a car for the canapes - server turns client:");
        ns.register_server(car_rental, 9);
        const auto rental = ns.locate(car_rental, 30);
        tell("caterer", rental.found ? "rented a van from house " + std::to_string(rental.where)
                                     : "no van, no party");
    }

    std::cout << "\n--- Asking friends: hash locate ---\n";
    {
        sim::simulator sim{town};
        const strategies::hash_locate_strategy friends{town_size, 2};
        runtime::name_service ns{sim, friends};
        ns.register_server(catering, caterer);
        try_locate(ns, "friends-of-friends", catering, host);
        tell("narrator", "two messages total - everyone agrees on who-would-know (the hash), "
                         "but if both those friends move away the service vanishes");
    }
    return 0;
}
