// lighthouse_demo - watch Lighthouse Locate (Section 4) sweep the plane.
//
// Servers drift trails across a torus grid; a client probes with the ruler
// schedule 1213121412131215...  The demo renders a small world as ASCII
// (S = server, * = live trail, C = client) at a few instants, then races
// the doubling schedule against the ruler schedule over many seeds.
#include <iomanip>
#include <iostream>

#include "lighthouse/lighthouse_sim.h"
#include "lighthouse/plane.h"
#include "lighthouse/ruler.h"
#include "sim/rng.h"

namespace {

using namespace mm;
using namespace mm::lighthouse;

void render(trail_map& trails, const std::vector<cell>& servers, cell client,
            std::int64_t now) {
    const core::port_id port = core::port_of("demo");
    std::cout << "t = " << now << ":\n";
    for (int y = 0; y < trails.height(); ++y) {
        for (int x = 0; x < trails.width(); ++x) {
            const cell here{x, y};
            char glyph = '.';
            if (trails.live_trail(here, port, now)) glyph = '*';
            for (const auto& s : servers)
                if (s == here) glyph = 'S';
            if (here == client) glyph = 'C';
            std::cout << glyph;
        }
        std::cout << "\n";
    }
    std::cout << "\n";
}

}  // namespace

int main() {
    // A tiny visible world.
    constexpr int size = 28;
    trail_map trails{size, size};
    const core::port_id port = core::port_of("demo");
    const std::vector<cell> servers{{5, 5}, {21, 9}, {9, 22}};
    const cell client{size / 2, size / 2};
    sim::rng random{7};

    constexpr double two_pi = 6.283185307179586;
    for (std::int64_t now = 0; now <= 24; ++now) {
        if (now % 6 == 0) {
            for (const auto& s : servers) {
                const double angle = random.uniform01() * two_pi;
                for (const cell& c : rasterize_beam(size, size, s, angle, 9))
                    trails.deposit(c, port, 1, now + 14);
                trails.deposit(s, port, 1, now + 14);
            }
        }
        if (now == 12 || now == 24) render(trails, servers, client, now);
    }

    // The ruler schedule itself.
    std::cout << "ruler schedule (beam length units per trial): ";
    ruler_schedule ruler;
    for (int t = 0; t < 16; ++t) std::cout << ruler.next();
    std::cout << "...\n\n";

    // Race the two client schedules across seeds.
    std::cout << "schedule race (64 worlds, density 0.004):\n";
    std::int64_t doubling_total = 0;
    std::int64_t ruler_total = 0;
    std::int64_t doubling_msgs = 0;
    std::int64_t ruler_msgs = 0;
    for (unsigned seed = 1; seed <= 64; ++seed) {
        lighthouse_params p;
        p.width = 96;
        p.height = 96;
        p.server_density = 0.004;
        p.server_beam_length = 16;
        p.server_period = 8;
        p.trail_lifetime = 40;
        p.client_base_length = 2;
        p.client_period = 8;
        p.max_time = 1 << 14;
        p.seed = seed;
        p.schedule = client_schedule::doubling;
        const auto doubling = run_lighthouse(p);
        p.schedule = client_schedule::ruler;
        const auto ruler_run = run_lighthouse(p);
        doubling_total += doubling.time_to_locate;
        ruler_total += ruler_run.time_to_locate;
        doubling_msgs += doubling.client_messages;
        ruler_msgs += ruler_run.client_messages;
    }
    std::cout << std::fixed << std::setprecision(1);
    std::cout << "  doubling: mean time " << doubling_total / 64.0 << ", mean client messages "
              << doubling_msgs / 64.0 << "\n";
    std::cout << "  ruler:    mean time " << ruler_total / 64.0 << ", mean client messages "
              << ruler_msgs / 64.0 << "\n";
    std::cout << "(the ruler schedule keeps short beams in play, catching servers that\n"
                 " drift close with less time-loss - the paper's stated advantage)\n";
    return 0;
}
