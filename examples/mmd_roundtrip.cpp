// mmd_roundtrip - the real-transport quickstart: register, locate and
// migrate a service through the match-making daemon over loopback TCP.
//
// Two modes:
//  * bare run (the CTest smoke test): starts an in-process daemon on an
//    ephemeral port, runs the round trip against it, exits 0 - fully
//    self-contained.
//  * --connect PORT: skips the in-process daemon and talks to an mmd
//    already listening on 127.0.0.1:PORT - the README's two-process
//    quickstart (`mmd --port 7000 &` then `mmd_roundtrip --connect 7000`),
//    also driven by tools/loopback_smoke.sh in CI.
//
// Either way the client side is identical: a strategy shared with the
// daemon by construction (hash, n = 16, 3 replicas), a route table mapping
// every abstract node to the daemon's endpoint, and the same op-handle
// calls the simulator runtime exposes.
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <thread>

#include "daemon/mm_client.h"
#include "daemon/mmd_server.h"
#include "daemon/strategy_factory.h"
#include "transport/tcp_transport.h"

namespace {

constexpr mm::net::node_id kNodes = 16;
constexpr int kReplicas = 3;

int run_roundtrip(std::uint16_t port) {
    const auto strategy = mm::daemon::make_strategy("hash", kNodes, kReplicas);
    mm::transport::tcp_transport net;
    for (mm::net::node_id v = 0; v < kNodes; ++v) net.add_route(v, "127.0.0.1", port);
    mm::daemon::mm_client client{net, *strategy};

    std::printf("registering port 7 at node 3...\n");
    client.register_server(7, 3);

    auto res = client.locate(7, 11);
    std::printf("locate(7) from node 11: found=%s where=%d (queried %d rendezvous nodes)\n",
                res.found ? "yes" : "no", res.where, res.nodes_queried);
    if (!res.found || res.where != 3) return 1;

    std::printf("migrating port 7 from node 3 to node 9...\n");
    client.migrate_server(7, 3, 9);
    res = client.locate_fresh(7, 11);
    std::printf("locate_fresh(7): found=%s where=%d\n", res.found ? "yes" : "no", res.where);
    if (!res.found || res.where != 9) return 1;

    client.deregister_server(7, 9);
    res = client.locate_fresh(7, 11);
    std::printf("after deregister: found=%s\n", res.found ? "yes" : "no");
    if (res.found) return 1;

    std::printf("round trip OK\n");
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc == 3 && std::strcmp(argv[1], "--connect") == 0) {
        const auto port = static_cast<std::uint16_t>(std::atoi(argv[2]));
        return run_roundtrip(port);
    }
    if (argc != 1) {
        std::fprintf(stderr, "usage: %s [--connect PORT]\n", argv[0]);
        return 2;
    }

    // Self-contained mode: daemon and client in one process, real sockets.
    const auto strategy = mm::daemon::make_strategy("hash", kNodes, kReplicas);
    mm::transport::tcp_transport daemon_net;
    const auto port = daemon_net.listen_on(0);
    mm::daemon::mmd_server server{daemon_net, *strategy};
    std::atomic<bool> stop{false};
    std::thread daemon_thread{[&] { server.serve(stop, 5); }};
    std::printf("in-process mmd listening on 127.0.0.1:%u\n", static_cast<unsigned>(port));

    const int rc = run_roundtrip(port);

    stop.store(true);
    daemon_thread.join();
    return rc;
}
