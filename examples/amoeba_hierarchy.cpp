// amoeba_hierarchy - the Amoeba-style service hierarchy of Sections 1.3
// and 3.5.
//
// A three-level network (hosts -> LANs -> campus): "when a client initiates
// a locate operation, the system first does a local locate at the lowest
// level of the hierarchy...  if this fails, a locate is carried out at the
// next level, and this goes on until the top level is reached."  Local
// services (the per-host "Operating System Service") resolve at level 1;
// the campus-wide database needs the top.  The query server demonstrates
// the paper's recovery chain: its database server crashes, it locates a
// replica and retries before reporting anything to the human.
#include <iostream>

#include "net/hierarchy.h"
#include "runtime/name_service.h"
#include "strategies/hierarchical.h"

int main() {
    using namespace mm;

    // 6 hosts per LAN, 4 LANs per campus, 3 campuses: 72 nodes.
    const net::hierarchy shape{{6, 4, 3}};
    const auto network = net::make_hierarchical_graph(shape);
    std::cout << "network: " << network.summary() << " ("
              << shape.levels() << " levels)\n\n";

    sim::simulator sim{network};
    const strategies::hierarchical_strategy strategy{shape};
    runtime::name_service ns{sim, strategy};

    const auto os_port = core::port_of("os-service");
    const auto fs_port = core::port_of("file-server");
    const auto db_port = core::port_of("database");

    const net::node_id client = 2;   // a workstation on LAN 0, campus 0
    ns.register_server(os_port, 4);  // same LAN
    ns.register_server(fs_port, 13); // same campus, another LAN
    ns.register_server(db_port, 50); // remote campus
    ns.register_server(db_port, 70); // database replica, another campus

    const auto report = [&](const char* label, core::port_id port) {
        const auto res = ns.locate_staged(port, client);
        std::cout << label << ": " << (res.found ? "found at node " + std::to_string(res.where)
                                                 : std::string{"NOT FOUND"})
                  << " after " << res.stages << " level(s), " << res.nodes_queried
                  << " gateways asked, " << res.message_passes << " message passes\n";
        return res;
    };

    std::cout << "Staged locates from workstation " << client << ":\n";
    report("  os-service  (local)  ", os_port);
    report("  file-server (campus) ", fs_port);
    const auto db = report("  database    (global) ", db_port);

    // The recovery chain: the located database server crashes mid-session.
    // The query server detects the dead address, purges its stale binding
    // (fail-stop servers cannot deregister themselves) and re-locates,
    // finding the replica - so the command interpreter above never sees the
    // failure.
    std::cout << "\nThe database at node " << db.where << " crashes...\n";
    ns.crash_node(db.where);
    ns.purge_binding(db_port, db.where);  // survivor-side cleanup of the dead binding
    ns.repost_all();                      // replicas refresh on their poll period
    const auto replica = ns.locate_staged(db_port, client);
    if (replica.found && replica.where != db.where) {
        std::cout << "query server recovered: replica at node " << replica.where
                  << " answers; \"the human client at the top of the hierarchy gets to cope\n"
                  << "only with irrecoverable errors\".\n";
    } else {
        std::cout << "no live replica found - reporting failure upward.\n";
    }

    // Locality statistics: most traffic is local, so the staged scheme's
    // average cost stays near the level-1 cost (Section 3.5's assumption).
    std::int64_t staged_total = 0;
    std::int64_t flat_total = 0;
    int locates = 0;
    for (net::node_id c = 0; c < shape.node_count(); c += 5) {
        const auto staged = ns.locate_staged(os_port, c);
        const auto flat = ns.locate(os_port, c);
        staged_total += staged.nodes_queried;
        flat_total += flat.nodes_queried;
        ++locates;
    }
    std::cout << "\nAcross " << locates << " clients, staged locate asked "
              << staged_total << " gateways total vs " << flat_total
              << " for single-shot locates.\n";
    return 0;
}
